"""A small Pratt parser for the textual QuickLTL surface syntax.

Grammar (loosest binding first)::

    formula   ::= or_expr
    or_expr   ::= and_expr ("||" and_expr)*
    and_expr  ::= until_expr ("&&" until_expr)*
    until_expr::= unary (("until" | "release") subscript? unary_chain)?
                  -- right associative
    unary     ::= "!" unary
                | ("next" | "wnext" | "snext") unary
                | ("always" | "eventually") subscript? unary
                | "true" | "false" | IDENT | "(" formula ")"
    subscript ::= "{" NUMBER "}"

Identifiers become atoms: either looked up in the caller-supplied
``atoms`` mapping or, by default, dictionary-reading atoms as built by
:func:`repro.quickltl.syntax.atom`.

Temporal operators written without a subscript get ``default_subscript``
(the paper's Quickstrom default is 100).
"""

from __future__ import annotations

import re
from typing import Callable, Mapping, Optional

from .syntax import (
    Always,
    And,
    Atom,
    BOTTOM,
    DEFAULT_SUBSCRIPT,
    Eventually,
    Formula,
    NextReq,
    NextStrong,
    NextWeak,
    Not,
    Or,
    Release,
    TOP,
    Until,
    atom,
)

__all__ = ["parse_formula", "FormulaParseError"]


class FormulaParseError(ValueError):
    """Raised on malformed QuickLTL source text."""


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<num>\d+)|(?P<ident>[A-Za-z_][A-Za-z0-9_]*)|(?P<punct>\|\||&&|[!(){}]))"
)

_KEYWORDS = {
    "true",
    "false",
    "next",
    "wnext",
    "snext",
    "always",
    "eventually",
    "until",
    "release",
    "not",
}


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            remainder = text[pos:].lstrip()
            if not remainder:
                break
            raise FormulaParseError(f"unexpected character {remainder[0]!r}")
        tokens.append(match.group("num") or match.group("ident") or match.group("punct"))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(
        self,
        tokens: list[str],
        atoms: Optional[Mapping[str, Atom]],
        make_atom: Callable[[str], Atom],
        default_subscript: int,
    ) -> None:
        self._tokens = tokens
        self._pos = 0
        self._atoms = atoms
        self._make_atom = make_atom
        self._default = default_subscript

    def peek(self) -> Optional[str]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise FormulaParseError("unexpected end of formula")
        self._pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise FormulaParseError(f"expected {token!r}, got {got!r}")

    def parse(self) -> Formula:
        result = self.or_expr()
        if self.peek() is not None:
            raise FormulaParseError(f"trailing input at {self.peek()!r}")
        return result

    def or_expr(self) -> Formula:
        left = self.and_expr()
        while self.peek() == "||":
            self.next()
            left = Or(left, self.and_expr())
        return left

    def and_expr(self) -> Formula:
        left = self.until_expr()
        while self.peek() == "&&":
            self.next()
            left = And(left, self.until_expr())
        return left

    def until_expr(self) -> Formula:
        left = self.unary()
        token = self.peek()
        if token in ("until", "release"):
            self.next()
            n = self.subscript()
            right = self.until_expr()  # right associative
            if token == "until":
                return Until(n, left, right)
            return Release(n, left, right)
        return left

    def subscript(self) -> int:
        if self.peek() == "{":
            self.next()
            number = self.next()
            if not number.isdigit():
                raise FormulaParseError(f"expected subscript number, got {number!r}")
            self.expect("}")
            return int(number)
        return self._default

    def unary(self) -> Formula:
        token = self.next()
        if token in ("!", "not"):
            return Not(self.unary())
        if token == "next":
            return NextReq(self.unary())
        if token == "wnext":
            return NextWeak(self.unary())
        if token == "snext":
            return NextStrong(self.unary())
        if token == "always":
            n = self.subscript()
            return Always(n, self.unary())
        if token == "eventually":
            n = self.subscript()
            return Eventually(n, self.unary())
        if token == "true":
            return TOP
        if token == "false":
            return BOTTOM
        if token == "(":
            inner = self.or_expr()
            self.expect(")")
            return inner
        if token.isdigit():
            raise FormulaParseError(f"unexpected number {token!r}")
        if token in _KEYWORDS or not token[0].isalpha() and token[0] != "_":
            raise FormulaParseError(f"unexpected token {token!r}")
        if self._atoms is not None:
            try:
                return self._atoms[token]
            except KeyError:
                raise FormulaParseError(f"unknown atom {token!r}") from None
        return self._make_atom(token)


def parse_formula(
    text: str,
    *,
    atoms: Optional[Mapping[str, Atom]] = None,
    make_atom: Callable[[str], Atom] = atom,
    default_subscript: int = DEFAULT_SUBSCRIPT,
) -> Formula:
    """Parse QuickLTL surface syntax into a formula AST.

    ``atoms`` restricts identifiers to a known set; otherwise
    ``make_atom`` (default: dictionary-reading atoms) is applied to every
    identifier.  Atoms with the same name are shared within one parse, so
    the resulting AST deduplicates under simplification.
    """
    cache: dict[str, Atom] = {}

    def shared_make(name: str) -> Atom:
        if name not in cache:
            cache[name] = make_atom(name)
        return cache[name]

    parser = _Parser(_tokenize(text), atoms, shared_make, default_subscript)
    return parser.parse()
