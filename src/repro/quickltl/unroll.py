"""The one-state unrolling relation of Figure 6: ``phi --sigma--> phi'``.

Unrolling evaluates every atomic proposition against the given state and
expands every temporal operator one step (per the expansion identities of
Figure 5), leaving a formula in which every remaining non-trivial
obligation sits under one of the three "next" operators.

The expansion rules, with ``N!``, ``N`` and ``Ns`` standing for required,
weak and strong next:

==================  =======================================================
``always{n+1} p``   ``p' && N!(always{n} p)``
``always{0} p``     ``p' && N (always{0} p)``
``eventually{n+1}`` ``p' || N!(eventually{n} p)``
``eventually{0}``   ``p' || Ns(eventually{0} p)``
``p until{n+1} q``  ``q' || (p' && N!(p until{n} q))``
``p until{0} q``    ``q' || (p' && Ns(p until{0} q))``
``p release{n+1}``  ``q' && (p' || N!(p release{n} q))``
``p release{0} q``  ``q' && (p' || N (p release{0} q))``
==================  =======================================================

``Defer`` bodies are forced against the current state before being
unrolled, which realises Specstrom's staged evaluation: a strict ``let``
inside a temporal operator freezes the value the bound expression has in
the state where the operator unrolls.

Unrolling depends on the state, so its ``memo`` (node -> unrolled node)
is only valid for one state: the checker passes a fresh dict per
``observe``, which still collapses every *shared* subterm of the
hash-consed residual DAG to a single unroll.  Subtrees whose unroll is
themselves (truth values, next-guarded obligations) are returned without
allocation.
"""

from __future__ import annotations

from typing import Optional

from .syntax import (
    Always,
    And,
    Atom,
    Bottom,
    BOTTOM,
    Defer,
    Eventually,
    Formula,
    Not,
    NextReq,
    NextStrong,
    NextWeak,
    Or,
    Release,
    Top,
    TOP,
    Until,
)

__all__ = ["unroll"]


def unroll(formula: Formula, state: object, memo: Optional[dict] = None) -> Formula:
    """Unroll ``formula`` one step, partially evaluating it against ``state``.

    The result contains no ``Atom``, ``Always``, ``Eventually``, ``Until``,
    ``Release`` or ``Defer`` nodes outside of "next" operator bodies.
    ``memo`` (valid for this state only) deduplicates shared subterms.
    """
    if memo is not None:
        try:
            cached = memo.get(formula)
        except TypeError:  # pragma: no cover - unhashable custom atoms
            return _unroll(formula, state, None)
        if cached is not None:
            return cached
        result = _unroll(formula, state, memo)
        memo[formula] = result
        return result
    return _unroll(formula, state, None)


def _unroll(formula: Formula, state: object, memo: Optional[dict]) -> Formula:
    if isinstance(formula, (Top, Bottom)):
        return formula
    if isinstance(formula, Atom):
        return TOP if formula.evaluate(state) else BOTTOM
    if isinstance(formula, Defer):
        return unroll(formula.force(state), state, memo)
    if isinstance(formula, Not):
        inner = unroll(formula.operand, state, memo)
        return formula if inner is formula.operand else Not(inner)
    if isinstance(formula, And):
        left = unroll(formula.left, state, memo)
        right = unroll(formula.right, state, memo)
        if left is formula.left and right is formula.right:
            return formula
        return And(left, right)
    if isinstance(formula, Or):
        left = unroll(formula.left, state, memo)
        right = unroll(formula.right, state, memo)
        if left is formula.left and right is formula.right:
            return formula
        return Or(left, right)
    if isinstance(formula, (NextReq, NextWeak, NextStrong)):
        # Next-guarded obligations are untouched by unrolling; they are
        # discharged by the step relation (Figure 7) once a new state
        # becomes available.
        return formula
    if isinstance(formula, Always):
        body_now = unroll(formula.body, state, memo)
        if formula.n > 0:
            return And(body_now, NextReq(Always(formula.n - 1, formula.body)))
        return And(body_now, NextWeak(formula))
    if isinstance(formula, Eventually):
        body_now = unroll(formula.body, state, memo)
        if formula.n > 0:
            return Or(body_now, NextReq(Eventually(formula.n - 1, formula.body)))
        return Or(body_now, NextStrong(formula))
    if isinstance(formula, Until):
        left_now = unroll(formula.left, state, memo)
        right_now = unroll(formula.right, state, memo)
        if formula.n > 0:
            rest = NextReq(Until(formula.n - 1, formula.left, formula.right))
        else:
            rest = NextStrong(formula)
        return Or(right_now, And(left_now, rest))
    if isinstance(formula, Release):
        left_now = unroll(formula.left, state, memo)
        right_now = unroll(formula.right, state, memo)
        if formula.n > 0:
            rest = NextReq(Release(formula.n - 1, formula.left, formula.right))
        else:
            rest = NextWeak(formula)
        return And(right_now, Or(left_now, rest))
    raise TypeError(f"cannot unroll {type(formula).__name__}")
