"""Direct reference semantics of QuickLTL on complete finite traces.

This is an independent, recursive evaluator used as a *test oracle* for
the progression engine: for every formula ``phi`` and finite trace ``t``,

    ``check_trace(phi, t, stop_on_definitive=False) == direct_eval(phi, t)``

(property-tested in ``tests/quickltl/test_progression_vs_direct.py``).

The semantics follows the expansion identities of Figure 5 directly:
temporal operators are interpreted by recursion over the trace suffix,
and the three next operators resolve at the end of the trace to
``DEMAND`` (required), ``PROBABLY_TRUE`` (weak) and ``PROBABLY_FALSE``
(strong) respectively.
"""

from __future__ import annotations

from typing import Sequence

from .syntax import (
    Always,
    And,
    Atom,
    Bottom,
    Defer,
    Eventually,
    Formula,
    Not,
    NextReq,
    NextStrong,
    NextWeak,
    Or,
    Release,
    Top,
    Until,
)
from .verdict import Verdict, conj, disj, neg

__all__ = ["direct_eval"]


def direct_eval(formula: Formula, trace: Sequence[object]) -> Verdict:
    """Evaluate ``formula`` over the whole finite ``trace`` (non-empty)."""
    if not trace:
        raise ValueError("QuickLTL verdicts need at least one state")
    return _eval(formula, trace, 0)


def _eval(formula: Formula, trace: Sequence[object], i: int) -> Verdict:
    if isinstance(formula, Top):
        return Verdict.DEFINITELY_TRUE
    if isinstance(formula, Bottom):
        return Verdict.DEFINITELY_FALSE
    if isinstance(formula, Atom):
        return Verdict.of_bool(formula.evaluate(trace[i]))
    if isinstance(formula, Defer):
        return _eval(formula.force(trace[i]), trace, i)
    if isinstance(formula, Not):
        return neg(_eval(formula.operand, trace, i))
    if isinstance(formula, And):
        return conj(_eval(formula.left, trace, i), _eval(formula.right, trace, i))
    if isinstance(formula, Or):
        return disj(_eval(formula.left, trace, i), _eval(formula.right, trace, i))
    if isinstance(formula, NextReq):
        if i + 1 < len(trace):
            return _eval(formula.operand, trace, i + 1)
        return Verdict.DEMAND
    if isinstance(formula, NextWeak):
        if i + 1 < len(trace):
            return _eval(formula.operand, trace, i + 1)
        return Verdict.PROBABLY_TRUE
    if isinstance(formula, NextStrong):
        if i + 1 < len(trace):
            return _eval(formula.operand, trace, i + 1)
        return Verdict.PROBABLY_FALSE
    if isinstance(formula, Always):
        now = _eval(formula.body, trace, i)
        if i + 1 < len(trace):
            rest = _eval(Always(max(formula.n - 1, 0), formula.body), trace, i + 1)
        elif formula.n > 0:
            rest = Verdict.DEMAND
        else:
            rest = Verdict.PROBABLY_TRUE
        return conj(now, rest)
    if isinstance(formula, Eventually):
        now = _eval(formula.body, trace, i)
        if i + 1 < len(trace):
            rest = _eval(Eventually(max(formula.n - 1, 0), formula.body), trace, i + 1)
        elif formula.n > 0:
            rest = Verdict.DEMAND
        else:
            rest = Verdict.PROBABLY_FALSE
        return disj(now, rest)
    if isinstance(formula, Until):
        right_now = _eval(formula.right, trace, i)
        left_now = _eval(formula.left, trace, i)
        if i + 1 < len(trace):
            rest = _eval(
                Until(max(formula.n - 1, 0), formula.left, formula.right), trace, i + 1
            )
        elif formula.n > 0:
            rest = Verdict.DEMAND
        else:
            rest = Verdict.PROBABLY_FALSE
        return disj(right_now, conj(left_now, rest))
    if isinstance(formula, Release):
        right_now = _eval(formula.right, trace, i)
        left_now = _eval(formula.left, trace, i)
        if i + 1 < len(trace):
            rest = _eval(
                Release(max(formula.n - 1, 0), formula.left, formula.right),
                trace,
                i + 1,
            )
        elif formula.n > 0:
            rest = Verdict.DEMAND
        else:
            rest = Verdict.PROBABLY_TRUE
        return conj(right_now, disj(left_now, rest))
    raise TypeError(f"cannot evaluate {type(formula).__name__}")
