"""Formula progression: the three-phase evaluation loop of Section 2.3.

:class:`FormulaChecker` consumes trace states one at a time.  For each
state it

1. unrolls the current formula against the state (Figure 6),
2. simplifies the result; a literal ``top``/``bottom`` is a definitive
   verdict and checking stops, otherwise the result is in guarded form
   and a presumptive verdict (or a demand for more states) is computed,
3. steps the guarded form forward (Figure 7), ready for the next state.

The checker records the size of the progressed formula after every state,
which the ablation bench uses to confirm that per-step simplification
keeps progression from blowing up (Rosu & Havelund's caveat).

Compiled engine
---------------

With hash-consed nodes (:mod:`repro.quickltl.syntax`) the three phases
memoize by node identity through a :class:`ProgressionCaches` bundle:
``simplify``/``step``/``presumptive_valuation`` are pure, so their
caches persist across states *and across the checkers of a whole
campaign* (``repro.checker.compiled.CompiledSpec`` shares one bundle per
spec).  The caches are ordinary per-process dicts -- forked pool workers
each inherit a copy-on-write instance, which is what makes sharing them
fork-safe without any locking.  The unroll memo is state-dependent and
therefore lives only for a single ``observe``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .simplify import simplify
from .step import presumptive_valuation, step
from .syntax import (
    Always,
    And,
    Bottom,
    Eventually,
    Formula,
    NextReq,
    NextStrong,
    NextWeak,
    Not,
    Or,
    Release,
    Top,
    Until,
)
from .unroll import unroll
from .verdict import Verdict

__all__ = [
    "FormulaChecker",
    "ProgressionCaches",
    "check_trace",
    "formula_size",
    "progress",
]

#: Entry count at which a ProgressionCaches bundle resets itself: far
#: above what any realistic spec reaches (caches grow with *distinct*
#: interned terms, which per-step simplification keeps small), but a
#: hard bound so a pathological campaign cannot grow without limit.
_CACHE_LIMIT = 100_000


class ProgressionCaches:
    """Shared memo tables for the progression phases.

    One bundle may serve many checkers (every test of a campaign checks
    the same formula, so the tables converge after the first test).  All
    three tables key hash-consed nodes; ``sizes`` additionally backs the
    DAG-aware :func:`formula_size`.

    ``max_entries`` lowers the built-in safety bound for long-lived
    processes (the online monitor runs for days over an unbounded stream
    of residuals; a test campaign never needs this).  When the combined
    entry count crosses the bound the bundle resets wholesale -- entries
    are deterministic functions of their keys, so a reset costs only
    re-derivation, never correctness.  ``evicted_entries``/``trims``
    count what the resets dropped; under the thread-fallback pool a
    bundle may be shared across threads, so treat the counters as
    advisory there.
    """

    __slots__ = ("simplify", "step", "valuation", "sizes", "max_entries",
                 "evicted_entries", "trims")

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(
                f"max_entries must be at least 1, got {max_entries}"
            )
        self.simplify: dict = {}
        self.step: dict = {}
        self.valuation: dict = {}
        self.sizes: Dict[Formula, int] = {}
        self.max_entries = max_entries
        #: Total memo entries dropped by resets over this bundle's life.
        self.evicted_entries = 0
        #: Number of wholesale resets (trim-triggered or explicit).
        self.trims = 0

    def __len__(self) -> int:
        """Combined entry count across all four tables."""
        return (
            len(self.simplify) + len(self.step) + len(self.valuation)
            + len(self.sizes)
        )

    def trim(self) -> None:
        """Reset everything once past the bound (see class docs)."""
        limit = self.max_entries if self.max_entries is not None else _CACHE_LIMIT
        if len(self) > limit:
            self.clear()

    def clear(self) -> Dict[str, int]:
        """Drop every memo entry; returns what was dropped, per table.

        The report (``{"simplify": n, ..., "total": n}``) lets long-running
        callers log *what* a reset cost instead of guessing; dropping
        nothing is not counted as a trim.
        """
        dropped = {
            "simplify": len(self.simplify),
            "step": len(self.step),
            "valuation": len(self.valuation),
            "sizes": len(self.sizes),
        }
        self.simplify.clear()
        self.step.clear()
        self.valuation.clear()
        self.sizes.clear()
        total = sum(dropped.values())
        dropped["total"] = total
        if total:
            self.evicted_entries += total
            self.trims += 1
        return dropped


def formula_size(formula: Formula, sizes: Optional[dict] = None) -> int:
    """Number of AST nodes (deferred bodies count as one node).

    Counts the formula as a *tree* (matching the paper's size plots) but
    walks it as a DAG: an explicit stack instead of recursion, so
    arbitrarily deep residuals cannot hit the interpreter's recursion
    limit, and a node-keyed ``sizes`` memo so shared subterms -- which
    hash-consing makes pervasive -- are measured once.
    """
    if sizes is None:
        sizes = {}
    try:
        cached = sizes.get(formula)
    except TypeError:  # pragma: no cover - unhashable custom atoms
        return _tree_size(formula)
    if cached is not None:
        return cached
    try:
        stack = [formula]
        while stack:
            node = stack.pop()
            if node in sizes:
                continue
            kids = _size_children(node)
            pending = [child for child in kids if child not in sizes]
            if pending:
                stack.append(node)
                stack.extend(pending)
            else:
                sizes[node] = 1 + sum(sizes[child] for child in kids)
        return sizes[formula]
    except KeyError:  # pragma: no cover - concurrent cache trim
        # A shared `sizes` table (thread-fallback pools share one
        # ProgressionCaches bundle) can be cleared by another thread's
        # trim() mid-walk; redo the measurement on a private memo.
        return formula_size(formula, {})


def _size_children(node: Formula):
    if isinstance(node, (And, Or)):
        return (node.left, node.right)
    if isinstance(node, (Until, Release)):
        return (node.left, node.right)
    if isinstance(node, (Not, NextReq, NextWeak, NextStrong)):
        return (node.operand,)
    if isinstance(node, (Always, Eventually)):
        return (node.body,)
    return ()


def progress(
    formula: Formula,
    state: object,
    caches: ProgressionCaches,
    unroll_memo: Optional[dict] = None,
) -> Tuple[Verdict, Formula, int]:
    """One full progression step outside any checker object.

    Unrolls ``formula`` against ``state``, simplifies, reads off the
    verdict and steps the guarded form forward; returns
    ``(verdict, residual, size)`` where ``size`` is the simplified
    formula's tree size.  This is the checker's per-state hot path
    exposed as a pure function, so callers that track *many* residuals
    (the online monitor holds one per live session) can progress them
    without a :class:`FormulaChecker` each -- all per-session state is
    the residual itself.

    ``unroll_memo`` is the per-state unroll memo; callers progressing
    several formulas against the *same* state (a monitor tick batching
    same-state cohorts) should share one dict across those calls, so
    subterms common to different sessions' residuals unroll once.  It
    must never be reused across distinct states.
    """
    if unroll_memo is None:
        unroll_memo = {}
    unrolled = unroll(formula, state, unroll_memo)
    reduced = simplify(unrolled, caches.simplify)
    size = formula_size(reduced, caches.sizes)
    if isinstance(reduced, Top):
        return Verdict.DEFINITELY_TRUE, reduced, size
    if isinstance(reduced, Bottom):
        return Verdict.DEFINITELY_FALSE, reduced, size
    verdict = presumptive_valuation(reduced, caches.valuation)
    residual = step(reduced, caches.step)
    caches.trim()
    return verdict, residual, size


def _tree_size(formula: Formula) -> int:
    """Unmemoized iterative fallback for unhashable nodes."""
    size = 0
    stack = [formula]
    while stack:
        node = stack.pop()
        size += 1
        stack.extend(_size_children(node))
    return size


@dataclass
class FormulaChecker:
    """Incremental QuickLTL evaluator over a growing partial trace.

    Typical use::

        checker = FormulaChecker(formula)
        for state in trace:
            verdict = checker.observe(state)
            if verdict.is_definitive:
                break
        final = checker.verdict   # may be presumptive (or DEMAND)

    ``caches`` is an optional :class:`ProgressionCaches` bundle; passing
    one shared across the checkers of a campaign (what
    ``CompiledSpec.checker()`` does) means later tests replay earlier
    tests' simplify/step work as dict hits.  Without one the checker
    builds a private bundle, so memoization is always on.

    ``simplify_each_step`` exists for the ablation study only; turning it
    off makes progression follow the naive expansion.
    """

    formula: Formula
    simplify_each_step: bool = True
    caches: Optional[ProgressionCaches] = None
    _current: Optional[Formula] = field(default=None, init=False, repr=False)
    _verdict: Verdict = field(default=Verdict.DEMAND, init=False)
    _states_seen: int = field(default=0, init=False)
    _sizes: List[int] = field(default_factory=list, init=False, repr=False)

    def __post_init__(self) -> None:
        self._current = self.formula
        if self.caches is None:
            self.caches = ProgressionCaches()

    @property
    def verdict(self) -> Verdict:
        """The verdict after the states observed so far.

        Before any state is observed this is ``DEMAND``: evaluating any
        formula requires at least one state.
        """
        return self._verdict

    @property
    def states_seen(self) -> int:
        return self._states_seen

    @property
    def formula_sizes(self) -> List[int]:
        """Size of the progressed formula after each observed state."""
        return list(self._sizes)

    @property
    def max_formula_size(self) -> int:
        """The largest progressed-formula size seen so far."""
        return max(self._sizes, default=0)

    @property
    def is_definitive(self) -> bool:
        return self._verdict.is_definitive

    @property
    def needs_more_states(self) -> bool:
        """True when no presumptive answer may be given yet (required-next
        obligations remain, or no state has been observed)."""
        return self._verdict is Verdict.DEMAND

    @property
    def residual(self) -> Formula:
        """The progressed formula awaiting the next state."""
        return self._current

    def force(self) -> Verdict:
        """The verdict to report when the action budget is exhausted.

        If the current verdict is already decided (or presumptive), it is
        returned as-is; a demanding verdict is resolved by the polarity
        rule of :mod:`repro.quickltl.forced` over the residual formula.
        """
        if self._verdict is not Verdict.DEMAND:
            return self._verdict
        from .forced import force_verdict

        return force_verdict(self._current)

    def observe(self, state: object) -> Verdict:
        """Feed the next trace state and return the updated verdict.

        Observing further states after a definitive verdict is a no-op
        (``top``/``bottom`` are fixpoints of unrolling), so callers need
        not special-case early termination.
        """
        caches = self.caches
        if self.simplify_each_step:
            # The production path is the pure per-state step shared with
            # the online monitor's batcher.
            verdict, residual, size = progress(self._current, state, caches)
            self._states_seen += 1
            self._sizes.append(size)
            self._verdict = verdict
            self._current = residual
            return verdict
        # The ablation baseline: unroll without simplifying.
        unrolled = unroll(self._current, state, {})
        reduced = unrolled
        self._states_seen += 1
        self._sizes.append(formula_size(reduced, caches.sizes))
        if isinstance(reduced, Top):
            self._verdict = Verdict.DEFINITELY_TRUE
            self._current = reduced
            return self._verdict
        if isinstance(reduced, Bottom):
            self._verdict = Verdict.DEFINITELY_FALSE
            self._current = reduced
            return self._verdict
        if not _guardable(reduced):
            # Naive progression (the ablation's baseline): the verdict is
            # read off a simplified *copy*, but the formula that gets
            # stepped forward is the raw unrolled one, dead truth-value
            # weight and all -- this is precisely the configuration in
            # which Rosu & Havelund's exponential blow-up appears.
            cleaned = simplify(reduced, caches.simplify)
            if isinstance(cleaned, Top):
                self._verdict = Verdict.DEFINITELY_TRUE
                self._current = cleaned
                return self._verdict
            if isinstance(cleaned, Bottom):
                self._verdict = Verdict.DEFINITELY_FALSE
                self._current = cleaned
                return self._verdict
            self._verdict = presumptive_valuation(cleaned, caches.valuation)
            self._current = _lenient_step(reduced)
            caches.trim()
            return self._verdict
        # Phase 2 (cont.): guarded form; presumptive verdict or demand.
        self._verdict = presumptive_valuation(reduced, caches.valuation)
        # Phase 3: step forward for the next state.
        self._current = step(reduced, caches.step)
        caches.trim()
        return self._verdict


def _guardable(formula: Formula) -> bool:
    from .step import is_guarded_form

    return is_guarded_form(formula)


def _lenient_step(formula: Formula) -> Formula:
    """Step an *unsimplified* unrolled formula forward.

    Truth values are carried along unchanged (they are fixpoints of
    unrolling), connectives are homomorphic and next guards are
    stripped.  Semantically equivalent to simplify-then-step, but the
    dead weight accumulates -- used only by the no-simplification
    ablation baseline.
    """
    if isinstance(formula, (Top, Bottom)):
        return formula
    if isinstance(formula, Not):
        return Not(_lenient_step(formula.operand))
    if isinstance(formula, And):
        return And(_lenient_step(formula.left), _lenient_step(formula.right))
    if isinstance(formula, Or):
        return Or(_lenient_step(formula.left), _lenient_step(formula.right))
    if isinstance(formula, (NextReq, NextWeak, NextStrong)):
        return formula.operand
    raise TypeError(f"cannot step {type(formula).__name__}")


def check_trace(formula: Formula, trace, *, stop_on_definitive: bool = True) -> Verdict:
    """Run a complete finite trace through a fresh checker.

    Returns the final verdict; with ``stop_on_definitive`` (the default)
    evaluation short-circuits as soon as the verdict is definitive, like
    the real checker does.
    """
    checker = FormulaChecker(formula)
    verdict = Verdict.DEMAND
    for state in trace:
        verdict = checker.observe(state)
        if stop_on_definitive and verdict.is_definitive:
            return verdict
    return verdict
