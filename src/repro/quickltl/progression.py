"""Formula progression: the three-phase evaluation loop of Section 2.3.

:class:`FormulaChecker` consumes trace states one at a time.  For each
state it

1. unrolls the current formula against the state (Figure 6),
2. simplifies the result; a literal ``top``/``bottom`` is a definitive
   verdict and checking stops, otherwise the result is in guarded form
   and a presumptive verdict (or a demand for more states) is computed,
3. steps the guarded form forward (Figure 7), ready for the next state.

The checker records the size of the progressed formula after every state,
which the ablation bench uses to confirm that per-step simplification
keeps progression from blowing up (Rosu & Havelund's caveat).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .simplify import simplify
from .step import presumptive_valuation, step
from .syntax import Bottom, Formula, Top
from .unroll import unroll
from .verdict import Verdict

__all__ = ["FormulaChecker", "check_trace", "formula_size"]


def formula_size(formula: Formula) -> int:
    """Number of AST nodes (deferred bodies count as one node)."""
    from .syntax import And, Or, Not, NextReq, NextWeak, NextStrong
    from .syntax import Always, Eventually, Until, Release

    if isinstance(formula, (And, Or)):
        return 1 + formula_size(formula.left) + formula_size(formula.right)
    if isinstance(formula, (Until, Release)):
        return 1 + formula_size(formula.left) + formula_size(formula.right)
    if isinstance(formula, (Not, NextReq, NextWeak, NextStrong)):
        return 1 + formula_size(formula.operand)
    if isinstance(formula, (Always, Eventually)):
        return 1 + formula_size(formula.body)
    return 1


@dataclass
class FormulaChecker:
    """Incremental QuickLTL evaluator over a growing partial trace.

    Typical use::

        checker = FormulaChecker(formula)
        for state in trace:
            verdict = checker.observe(state)
            if verdict.is_definitive:
                break
        final = checker.verdict   # may be presumptive (or DEMAND)

    ``simplify_each_step`` exists for the ablation study only; turning it
    off makes progression follow the naive expansion.
    """

    formula: Formula
    simplify_each_step: bool = True
    _current: Optional[Formula] = field(default=None, init=False, repr=False)
    _verdict: Verdict = field(default=Verdict.DEMAND, init=False)
    _states_seen: int = field(default=0, init=False)
    _sizes: List[int] = field(default_factory=list, init=False, repr=False)

    def __post_init__(self) -> None:
        self._current = self.formula

    @property
    def verdict(self) -> Verdict:
        """The verdict after the states observed so far.

        Before any state is observed this is ``DEMAND``: evaluating any
        formula requires at least one state.
        """
        return self._verdict

    @property
    def states_seen(self) -> int:
        return self._states_seen

    @property
    def formula_sizes(self) -> List[int]:
        """Size of the progressed formula after each observed state."""
        return list(self._sizes)

    @property
    def is_definitive(self) -> bool:
        return self._verdict.is_definitive

    @property
    def needs_more_states(self) -> bool:
        """True when no presumptive answer may be given yet (required-next
        obligations remain, or no state has been observed)."""
        return self._verdict is Verdict.DEMAND

    @property
    def residual(self) -> Formula:
        """The progressed formula awaiting the next state."""
        return self._current

    def force(self) -> Verdict:
        """The verdict to report when the action budget is exhausted.

        If the current verdict is already decided (or presumptive), it is
        returned as-is; a demanding verdict is resolved by the polarity
        rule of :mod:`repro.quickltl.forced` over the residual formula.
        """
        if self._verdict is not Verdict.DEMAND:
            return self._verdict
        from .forced import force_verdict

        return force_verdict(self._current)

    def observe(self, state: object) -> Verdict:
        """Feed the next trace state and return the updated verdict.

        Observing further states after a definitive verdict is a no-op
        (``top``/``bottom`` are fixpoints of unrolling), so callers need
        not special-case early termination.
        """
        # Phase 1: unroll against the new state.
        unrolled = unroll(self._current, state)
        # Phase 2: simplify; definitive answers stop checking.
        reduced = simplify(unrolled) if self.simplify_each_step else unrolled
        self._states_seen += 1
        self._sizes.append(formula_size(reduced))
        if isinstance(reduced, Top):
            self._verdict = Verdict.DEFINITELY_TRUE
            self._current = reduced
            return self._verdict
        if isinstance(reduced, Bottom):
            self._verdict = Verdict.DEFINITELY_FALSE
            self._current = reduced
            return self._verdict
        if not self.simplify_each_step and not _guardable(reduced):
            # Naive progression (the ablation's baseline): the verdict is
            # read off a simplified *copy*, but the formula that gets
            # stepped forward is the raw unrolled one, dead truth-value
            # weight and all -- this is precisely the configuration in
            # which Rosu & Havelund's exponential blow-up appears.
            cleaned = simplify(reduced)
            if isinstance(cleaned, Top):
                self._verdict = Verdict.DEFINITELY_TRUE
                self._current = cleaned
                return self._verdict
            if isinstance(cleaned, Bottom):
                self._verdict = Verdict.DEFINITELY_FALSE
                self._current = cleaned
                return self._verdict
            self._verdict = presumptive_valuation(cleaned)
            self._current = _lenient_step(reduced)
            return self._verdict
        # Phase 2 (cont.): guarded form; presumptive verdict or demand.
        self._verdict = presumptive_valuation(reduced)
        # Phase 3: step forward for the next state.
        self._current = step(reduced)
        return self._verdict


def _guardable(formula: Formula) -> bool:
    from .step import is_guarded_form

    return is_guarded_form(formula)


def _lenient_step(formula: Formula) -> Formula:
    """Step an *unsimplified* unrolled formula forward.

    Truth values are carried along unchanged (they are fixpoints of
    unrolling), connectives are homomorphic and next guards are
    stripped.  Semantically equivalent to simplify-then-step, but the
    dead weight accumulates -- used only by the no-simplification
    ablation baseline.
    """
    from .syntax import And, Bottom, Not, NextReq, NextStrong, NextWeak, Or, Top

    if isinstance(formula, (Top, Bottom)):
        return formula
    if isinstance(formula, Not):
        return Not(_lenient_step(formula.operand))
    if isinstance(formula, And):
        return And(_lenient_step(formula.left), _lenient_step(formula.right))
    if isinstance(formula, Or):
        return Or(_lenient_step(formula.left), _lenient_step(formula.right))
    if isinstance(formula, (NextReq, NextWeak, NextStrong)):
        return formula.operand
    raise TypeError(f"cannot step {type(formula).__name__}")


def check_trace(formula: Formula, trace, *, stop_on_definitive: bool = True) -> Verdict:
    """Run a complete finite trace through a fresh checker.

    Returns the final verdict; with ``stop_on_definitive`` (the default)
    evaluation short-circuits as soon as the verdict is definitive, like
    the real checker does.
    """
    checker = FormulaChecker(formula)
    verdict = Verdict.DEMAND
    for state in trace:
        verdict = checker.observe(state)
        if stop_on_definitive and verdict.is_definitive:
            return verdict
    return verdict
