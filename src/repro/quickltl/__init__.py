"""QuickLTL: the paper's multi-valued LTL dialect for partial traces.

Public API:

* formula constructors (:mod:`repro.quickltl.syntax`),
* the five-valued verdict algebra (:mod:`repro.quickltl.verdict`),
* the incremental progression checker
  (:class:`repro.quickltl.progression.FormulaChecker`),
* the textual parser/pretty-printer,
* reference semantics used for validation (``direct``, ``classic``,
  ``rvltl``).
"""

from .verdict import Verdict, conj as verdict_conj, disj as verdict_disj, neg as verdict_neg
from .syntax import (
    Formula,
    Top,
    Bottom,
    TOP,
    BOTTOM,
    Atom,
    Not,
    And,
    Or,
    NextReq,
    NextWeak,
    NextStrong,
    Always,
    Eventually,
    Until,
    Release,
    Defer,
    atom,
    implies,
    iff,
    conj,
    disj,
    children,
    intern_stats,
    intern_table_size,
    intern_delta,
    push_intern_counter,
    pop_intern_counter,
    InternDelta,
    DEFAULT_SUBSCRIPT,
)
from .unroll import unroll
from .simplify import simplify, negate
from .step import (
    is_guarded_form,
    demands_next,
    presumptive_valuation,
    step,
    NotGuardedError,
)
from .progression import (
    FormulaChecker,
    ProgressionCaches,
    check_trace,
    formula_size,
    progress,
)
from .direct import direct_eval
from .classic import Lasso, holds
from .rvltl import erase_subscripts, rv_eval, fltl_eval
from .parser import parse_formula, FormulaParseError
from .pretty import pretty
from .forced import force_verdict

__all__ = [
    "Verdict",
    "verdict_conj",
    "verdict_disj",
    "verdict_neg",
    "Formula",
    "Top",
    "Bottom",
    "TOP",
    "BOTTOM",
    "Atom",
    "Not",
    "And",
    "Or",
    "NextReq",
    "NextWeak",
    "NextStrong",
    "Always",
    "Eventually",
    "Until",
    "Release",
    "Defer",
    "atom",
    "implies",
    "iff",
    "conj",
    "disj",
    "children",
    "intern_stats",
    "intern_table_size",
    "intern_delta",
    "push_intern_counter",
    "pop_intern_counter",
    "InternDelta",
    "DEFAULT_SUBSCRIPT",
    "unroll",
    "simplify",
    "negate",
    "is_guarded_form",
    "demands_next",
    "presumptive_valuation",
    "step",
    "NotGuardedError",
    "FormulaChecker",
    "ProgressionCaches",
    "check_trace",
    "formula_size",
    "progress",
    "direct_eval",
    "Lasso",
    "holds",
    "erase_subscripts",
    "rv_eval",
    "fltl_eval",
    "parse_formula",
    "FormulaParseError",
    "pretty",
    "force_verdict",
]
