"""The abstract executor interface.

The paper stresses that nothing about the checker is WebDriver-specific
(Section 3.4): paired with a different executor, the same checker can
test any reactive system.  This interface is that seam.  Two executors
ship with the reproduction: the simulated-browser executor
(:mod:`repro.executors.domexec`) and the CCS process-calculus executor
(:mod:`repro.executors.ccsexec`).

Message flow and time: gestures themselves are instantaneous; virtual
time advances only through :meth:`Executor.pass_time` (which the runner
calls to model decision/settle latency) and :meth:`Executor.await_events`
(event waits and ``timeout`` handling).  Asynchronous application
activity during those advances produces ``Event`` messages, which is how
the staleness scenario of Figure 10 arises.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List

from ..protocol.messages import Act, Narrow, Reset, Start

__all__ = ["ActionFailed", "Executor"]


class ActionFailed(RuntimeError):
    """A resolved action could not be performed (e.g. target vanished
    between selection and execution).

    Raised by every executor backend -- the checker catches it during
    replay without knowing which backend is in use.
    """


class Executor(ABC):
    """One test session against a system under test."""

    @abstractmethod
    def start(self, start: Start) -> None:
        """Load the system and begin observing.  Must enqueue the initial
        ``loaded?`` Event."""

    @abstractmethod
    def drain(self) -> List[object]:
        """Return (and clear) the pending executor->checker messages."""

    @abstractmethod
    def act(self, act: Act) -> bool:
        """Perform the action unless the request is stale (Figure 10).

        Returns True when the action was performed (an ``Acted`` message
        is enqueued), False when the request was ignored as stale.
        """

    @abstractmethod
    def pass_time(self, delta_ms: float) -> None:
        """Advance virtual time; asynchronous application activity may
        enqueue ``Event`` messages."""

    @abstractmethod
    def await_events(self, timeout_ms: float) -> None:
        """Advance time until an event batch occurs or ``timeout_ms``
        elapses; enqueues ``Event``s or a single ``Timeout``."""

    @property
    @abstractmethod
    def version(self) -> int:
        """Current trace length (number of states reported)."""

    @property
    @abstractmethod
    def now_ms(self) -> float:
        """Current virtual time, for running-time accounting."""

    def stop(self) -> None:
        """Tear the session down (default: nothing to do)."""

    def narrow(self, narrow: Narrow) -> bool:
        """Restrict subsequent snapshots to ``narrow.dependencies``
        (intersected with the session's ``Start`` set).

        Returns True when the restriction is in effect; the default
        declines, so backends that never heard of narrowing keep
        capturing the full dependency set -- the checker treats a
        decline as "full snapshots continue" and never asks again for
        this session.  ``start``/``reset`` always restore full capture.
        """
        return False

    def reset(self, reset: Reset) -> bool:
        """Begin a fresh session on this warm executor, if the backend
        can restore its initial state *exactly* (same initial state,
        virtual time back at zero, empty trace).

        Returns True when the reset happened (the initial ``loaded?``
        event is enqueued, as after :meth:`start`); False when the
        backend cannot reset -- the caller (an
        :class:`~repro.api.lease.ExecutorLease`) then falls back to
        :meth:`stop` plus a freshly constructed executor, so warm reuse
        is always an optimisation, never a semantics change.
        """
        return False
