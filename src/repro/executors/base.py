"""The abstract executor interface.

The paper stresses that nothing about the checker is WebDriver-specific
(Section 3.4): paired with a different executor, the same checker can
test any reactive system.  This interface is that seam.  Two executors
ship with the reproduction: the simulated-browser executor
(:mod:`repro.executors.domexec`) and the CCS process-calculus executor
(:mod:`repro.executors.ccsexec`).

Message flow and time: gestures themselves are instantaneous; virtual
time advances only through :meth:`Executor.pass_time` (which the runner
calls to model decision/settle latency) and :meth:`Executor.await_events`
(event waits and ``timeout`` handling).  Asynchronous application
activity during those advances produces ``Event`` messages, which is how
the staleness scenario of Figure 10 arises.
"""

from __future__ import annotations

import asyncio
import functools
import random
from abc import ABC, abstractmethod
from typing import List, Optional

from ..protocol.messages import Act, Narrow, Reset, Start

__all__ = [
    "ActionFailed",
    "AsyncExecutor",
    "Executor",
    "LatencyExecutor",
    "SyncExecutorAdapter",
    "ensure_async_executor",
]


class ActionFailed(RuntimeError):
    """A resolved action could not be performed (e.g. target vanished
    between selection and execution).

    Raised by every executor backend -- the checker catches it during
    replay without knowing which backend is in use.
    """


class Executor(ABC):
    """One test session against a system under test."""

    @abstractmethod
    def start(self, start: Start) -> None:
        """Load the system and begin observing.  Must enqueue the initial
        ``loaded?`` Event."""

    @abstractmethod
    def drain(self) -> List[object]:
        """Return (and clear) the pending executor->checker messages."""

    @abstractmethod
    def act(self, act: Act) -> bool:
        """Perform the action unless the request is stale (Figure 10).

        Returns True when the action was performed (an ``Acted`` message
        is enqueued), False when the request was ignored as stale.
        """

    @abstractmethod
    def pass_time(self, delta_ms: float) -> None:
        """Advance virtual time; asynchronous application activity may
        enqueue ``Event`` messages."""

    @abstractmethod
    def await_events(self, timeout_ms: float) -> None:
        """Advance time until an event batch occurs or ``timeout_ms``
        elapses; enqueues ``Event``s or a single ``Timeout``."""

    @property
    @abstractmethod
    def version(self) -> int:
        """Current trace length (number of states reported)."""

    @property
    @abstractmethod
    def now_ms(self) -> float:
        """Current virtual time, for running-time accounting."""

    def stop(self) -> None:
        """Tear the session down (default: nothing to do)."""

    def narrow(self, narrow: Narrow) -> bool:
        """Restrict subsequent snapshots to ``narrow.dependencies``
        (intersected with the session's ``Start`` set).

        Returns True when the restriction is in effect; the default
        declines, so backends that never heard of narrowing keep
        capturing the full dependency set -- the checker treats a
        decline as "full snapshots continue" and never asks again for
        this session.  ``start``/``reset`` always restore full capture.
        """
        return False

    def reset(self, reset: Reset) -> bool:
        """Begin a fresh session on this warm executor, if the backend
        can restore its initial state *exactly* (same initial state,
        virtual time back at zero, empty trace).

        Returns True when the reset happened (the initial ``loaded?``
        event is enqueued, as after :meth:`start`); False when the
        backend cannot reset -- the caller (an
        :class:`~repro.api.lease.ExecutorLease`) then falls back to
        :meth:`stop` plus a freshly constructed executor, so warm reuse
        is always an optimisation, never a semantics change.
        """
        return False


# ----------------------------------------------------------------------
# The async protocol
# ----------------------------------------------------------------------


class AsyncExecutor(ABC):
    """One test session driven from an event loop.

    The awaitable mirror of :class:`Executor`: same messages, same
    contracts, but every protocol call is a coroutine, so a single
    worker can keep hundreds of I/O-bound sessions in flight -- the
    shape real WebDriver (or network-service) backends need, where each
    round-trip is wire latency rather than CPU.  Virtual time remains
    the *session's* clock: wall-clock waits introduced by a backend
    (see :class:`LatencyExecutor`) never advance ``now_ms``, so async
    verdicts are byte-identical to synchronous ones.

    ``version`` / ``now_ms`` stay plain properties -- they read local
    bookkeeping, never the wire.
    """

    @abstractmethod
    async def start(self, start: Start) -> None:
        """Load the system and begin observing (see
        :meth:`Executor.start`)."""

    @abstractmethod
    async def drain(self) -> List[object]:
        """Return (and clear) the pending executor->checker messages."""

    @abstractmethod
    async def act(self, act: Act) -> bool:
        """Perform the action unless the request is stale (Figure 10)."""

    @abstractmethod
    async def pass_time(self, delta_ms: float) -> None:
        """Advance *virtual* time (see :meth:`Executor.pass_time`)."""

    @abstractmethod
    async def await_events(self, timeout_ms: float) -> None:
        """Advance time until an event batch occurs or ``timeout_ms``
        (virtual) elapses."""

    @property
    @abstractmethod
    def version(self) -> int:
        """Current trace length (number of states reported)."""

    @property
    @abstractmethod
    def now_ms(self) -> float:
        """Current virtual time, for running-time accounting."""

    async def stop(self) -> None:
        """Tear the session down (default: nothing to do)."""

    def stop_nowait(self) -> None:
        """Best-effort synchronous teardown, for contexts that cannot
        await (an :class:`~repro.api.lease.ExecutorCache` retiring a
        mismatched-loop entry).  Wrappers around synchronous executors
        stop the inner executor directly; purely-async backends should
        override with whatever non-blocking release they can manage."""

    async def narrow(self, narrow: Narrow) -> bool:
        """Restrict subsequent snapshots (see :meth:`Executor.narrow`);
        the default declines."""
        return False

    async def reset(self, reset: Reset) -> bool:
        """Begin a fresh session on this warm executor (see
        :meth:`Executor.reset`); the default declines."""
        return False


class SyncExecutorAdapter(AsyncExecutor):
    """Runs a synchronous executor's protocol calls on the event loop's
    default thread pool.

    This is how the simulated Dom/CCS backends (and any other
    :class:`Executor`) join an async session engine: each protocol call
    becomes ``loop.run_in_executor``, so while one session blocks in a
    (real or injected) wait, the loop keeps every other session moving.
    Per-call semantics are untouched -- one call in flight per session
    at a time, exactly the order the driver issues them -- so verdicts,
    traces and event streams are byte-identical to the sync runner.
    """

    __slots__ = ("inner",)

    def __init__(self, inner: Executor) -> None:
        self.inner = inner

    async def _call(self, fn, *args):
        loop = asyncio.get_running_loop()
        if args:
            fn = functools.partial(fn, *args)
        return await loop.run_in_executor(None, fn)

    async def start(self, start: Start) -> None:
        await self._call(self.inner.start, start)

    async def drain(self) -> List[object]:
        return await self._call(self.inner.drain)

    async def act(self, act: Act) -> bool:
        return await self._call(self.inner.act, act)

    async def pass_time(self, delta_ms: float) -> None:
        await self._call(self.inner.pass_time, delta_ms)

    async def await_events(self, timeout_ms: float) -> None:
        await self._call(self.inner.await_events, timeout_ms)

    async def stop(self) -> None:
        await self._call(self.inner.stop)

    def stop_nowait(self) -> None:
        self.inner.stop()

    async def narrow(self, narrow: Narrow) -> bool:
        fn = getattr(self.inner, "narrow", None)
        if fn is None:
            return False
        return await self._call(fn, narrow)

    async def reset(self, reset: Reset) -> bool:
        fn = getattr(self.inner, "reset", None)
        if fn is None:
            return False
        return await self._call(fn, reset)

    @property
    def version(self) -> int:
        return self.inner.version

    @property
    def now_ms(self) -> float:
        return self.inner.now_ms

    @property
    def recorder(self):
        """The inner executor's recorder, if any (stale-rejection
        accounting reads it through the adapter)."""
        return getattr(self.inner, "recorder", None)


class LatencyExecutor(AsyncExecutor):
    """Deterministic wall-clock latency injection around an executor.

    Models WebDriver round-trips for the simulated backends: every
    *wire* call (``start``/``drain``/``act``/``await_events``/
    ``narrow``/``reset``) first sleeps a pseudo-random real-time delay
    drawn from a private seeded RNG -- uniform in ``latency_ms * [1 -
    jitter, 1 + jitter]``.  The delay is **wall-clock only**: virtual
    time (``now_ms``), the trace, and the test's own RNG are never
    touched, so latency-injected verdicts are identical to plain runs
    by construction -- which is what lets benchmarks hard-assert
    verdict identity before timing the concurrency curve.

    ``inner`` may be a synchronous :class:`Executor` (called inline
    after the sleep -- simulated backends are CPU-cheap) or another
    :class:`AsyncExecutor` (awaited).  ``latency_ms=0`` disables the
    sleeps entirely, leaving a pass-through used by differential legs
    that only want the async code path exercised.
    """

    __slots__ = ("inner", "latency_ms", "jitter", "_rng", "_async")

    def __init__(
        self,
        inner,
        latency_ms: float = 5.0,
        jitter: float = 0.5,
        seed: object = 0,
    ) -> None:
        if latency_ms < 0:
            raise ValueError(f"latency_ms must be >= 0, got {latency_ms}")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be within [0, 1], got {jitter}")
        self.inner = inner
        self.latency_ms = latency_ms
        self.jitter = jitter
        self._rng = random.Random(f"latency/{seed}")
        self._async = isinstance(inner, AsyncExecutor)

    def next_delay_ms(self) -> float:
        """The next injected delay (milliseconds); 0 when disabled.
        Drawing advances the private RNG, exactly as a wire call
        would."""
        if self.latency_ms <= 0:
            return 0.0
        spread = self.latency_ms * self.jitter
        return self._rng.uniform(
            self.latency_ms - spread, self.latency_ms + spread
        )

    async def _round_trip(self, name: str, *args):
        delay_ms = self.next_delay_ms()
        if delay_ms > 0:
            await asyncio.sleep(delay_ms / 1000.0)
        fn = getattr(self.inner, name)
        result = fn(*args)
        if self._async:
            result = await result
        return result

    async def start(self, start: Start) -> None:
        await self._round_trip("start", start)

    async def drain(self) -> List[object]:
        return await self._round_trip("drain")

    async def act(self, act: Act) -> bool:
        return await self._round_trip("act", act)

    async def pass_time(self, delta_ms: float) -> None:
        # Virtual-time bookkeeping, not a wire call: no injected delay.
        result = self.inner.pass_time(delta_ms)
        if self._async:
            await result

    async def await_events(self, timeout_ms: float) -> None:
        await self._round_trip("await_events", timeout_ms)

    async def stop(self) -> None:
        result = self.inner.stop()
        if self._async:
            await result

    def stop_nowait(self) -> None:
        if self._async:
            self.inner.stop_nowait()
        else:
            self.inner.stop()

    async def narrow(self, narrow: Narrow) -> bool:
        fn = getattr(self.inner, "narrow", None)
        if fn is None:
            return False
        return await self._round_trip("narrow", narrow)

    async def reset(self, reset: Reset) -> bool:
        fn = getattr(self.inner, "reset", None)
        if fn is None:
            return False
        return await self._round_trip("reset", reset)

    @property
    def version(self) -> int:
        return self.inner.version

    @property
    def now_ms(self) -> float:
        return self.inner.now_ms

    @property
    def recorder(self):
        return getattr(self.inner, "recorder", None)


def ensure_async_executor(executor) -> AsyncExecutor:
    """Adapt ``executor`` for the async driver: :class:`AsyncExecutor`
    instances pass through, synchronous executors are wrapped in a
    :class:`SyncExecutorAdapter`."""
    if isinstance(executor, AsyncExecutor):
        return executor
    return SyncExecutorAdapter(executor)
