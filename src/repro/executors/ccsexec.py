"""The CCS executor: the checker drives a process-calculus model.

Nothing about the checker is WebDriver-specific (paper, Section 3.4);
this executor proves it.  The "application" is a CCS process; its
observable state exposes, for every label in the model's alphabet, a
pseudo-selector of the same name that matches exactly when the label is
currently enabled.  Specifications therefore read naturally::

    action coin!  = ccs!("coin")  when present(`coin`);
    action tea!   = ccs!("tea")   when present(`tea`);
    let ~canTea   = present(`tea`);
    check always{20} (coin! in happened ==> next (canTea || ...));

Internal ``tau`` steps are the model's autonomous activity: they fire on
a configurable virtual-time period while time passes, producing
``tau?`` events -- the analogue of a web page's asynchronous updates
(and they make the Figure 10 staleness path reachable here too).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..protocol.messages import Acted, Act, Event, Narrow, Reset, Start, Timeout
from ..protocol.session import TraceRecorder
from ..specstrom.state import ElementSnapshot, StateSnapshot
from .base import Executor
from .ccs import CCSDefinitions, Process, TAU, enabled_labels, transitions
from .base import ActionFailed

__all__ = ["CCSExecutor"]


class CCSExecutor(Executor):
    """Executor over a CCS model.

    ``tau_period_ms`` controls how often an enabled internal step fires
    while virtual time passes (0 disables autonomous activity).
    ``tau_seed`` makes the choice among several enabled tau-successors
    deterministic.
    """

    def __init__(
        self,
        initial: Process,
        definitions: Optional[CCSDefinitions] = None,
        tau_period_ms: float = 500.0,
        tau_seed: int = 0,
    ) -> None:
        self.definitions = definitions or CCSDefinitions()
        self.initial = initial
        self.process = initial
        self.tau_period_ms = tau_period_ms
        self.tau_seed = tau_seed
        self.recorder = TraceRecorder()
        self._outbox: List[object] = []
        self._dependencies: Tuple[str, ...] = ()
        self._active: Tuple[str, ...] = ()
        self._now_ms = 0.0
        self._next_tau_ms = tau_period_ms if tau_period_ms > 0 else None
        self._rng = random.Random(tau_seed)

    # ------------------------------------------------------------------
    # Executor interface
    # ------------------------------------------------------------------

    def start(self, start: Start) -> None:
        self._dependencies = tuple(sorted(start.dependencies))
        self._active = self._dependencies
        self.process = self.initial
        self._report("event", ("loaded?",))

    def reset(self, reset: Reset) -> bool:
        """Warm restart: back to the initial process, time zero, a fresh
        tau RNG -- observationally identical to a cold ``start`` on a
        newly constructed executor with the same parameters."""
        self._dependencies = tuple(sorted(reset.dependencies))
        self._active = self._dependencies
        self.process = self.initial
        self.recorder = TraceRecorder()
        self._outbox = []
        self._now_ms = 0.0
        self._next_tau_ms = self.tau_period_ms if self.tau_period_ms > 0 else None
        self._rng = random.Random(self.tau_seed)
        self._report("event", ("loaded?",))
        return True

    def narrow(self, narrow: Narrow) -> bool:
        """Capture only the requested pseudo-selectors (labels) in
        subsequent snapshots; ``start``/``reset`` restore full capture."""
        self._active = tuple(
            sorted(set(narrow.dependencies) & set(self._dependencies))
        )
        return True

    def drain(self) -> List[object]:
        messages, self._outbox = self._outbox, []
        return messages

    def act(self, act: Act) -> bool:
        if self.recorder.is_stale(act.version):
            self.recorder.note_stale_rejection()
            return False
        action = act.action
        if action.kind != "ccs":
            raise ActionFailed(
                f"CCS executor cannot perform primitive {action.kind!r}"
            )
        label = action.selector
        successors = [
            successor
            for step_label, successor in transitions(self.process, self.definitions)
            if step_label == label
        ]
        if not successors:
            raise ActionFailed(f"label {label!r} is not enabled in {self.process}")
        index = min(action.index or 0, len(successors) - 1)
        self.process = successors[index]
        self._report("acted", (act.name,))
        return True

    def pass_time(self, delta_ms: float) -> None:
        self._advance(self._now_ms + delta_ms)

    def await_events(self, timeout_ms: float) -> None:
        deadline = self._now_ms + timeout_ms
        if self._advance(deadline, stop_on_event=True):
            return
        self._report("timeout", ())

    @property
    def version(self) -> int:
        return self.recorder.length

    @property
    def now_ms(self) -> float:
        return self._now_ms

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _advance(self, target_ms: float, stop_on_event: bool = False) -> bool:
        """Advance virtual time, firing tau steps on their period."""
        fired = False
        while (
            self._next_tau_ms is not None
            and self._next_tau_ms <= target_ms
        ):
            self._now_ms = self._next_tau_ms
            self._next_tau_ms += self.tau_period_ms
            tau_successors = [
                successor
                for label, successor in transitions(self.process, self.definitions)
                if label == TAU
            ]
            if not tau_successors:
                continue
            self.process = tau_successors[self._rng.randrange(len(tau_successors))]
            self._report("event", ("tau?",))
            fired = True
            if stop_on_event:
                return True
        self._now_ms = max(self._now_ms, target_ms)
        return fired

    def _snapshot(self, happened: Tuple[str, ...]) -> StateSnapshot:
        enabled = set(enabled_labels(self.process, self.definitions))
        queries = {}
        for selector in self._active:
            if selector in enabled:
                queries[selector] = (
                    ElementSnapshot(tag="action", text=selector),
                )
            else:
                queries[selector] = ()
        return StateSnapshot(
            queries=queries,
            happened=happened,
            version=self.recorder.length + 1,
            timestamp_ms=self._now_ms,
        )

    def _report(self, kind: str, happened: Tuple[str, ...]) -> None:
        state = self._snapshot(happened)
        self.recorder.append(kind, happened, state)
        if kind == "acted":
            self._outbox.append(Acted(happened[0], state))
        elif kind == "timeout":
            self._outbox.append(Timeout(state))
        else:
            self._outbox.append(Event(happened[0] if happened else "event?", state))
