"""Executors: the systems the checker can drive."""

from .base import (
    ActionFailed,
    AsyncExecutor,
    Executor,
    LatencyExecutor,
    SyncExecutorAdapter,
    ensure_async_executor,
)
from .domexec import DomExecutor
from .ccs import (
    CCSDefinitions,
    Process,
    Nil,
    Prefix,
    Choice,
    Parallel,
    Restrict,
    Relabel,
    Ref,
    TAU,
    parse_ccs,
    parse_definitions,
    transitions,
    enabled_labels,
    CCSParseError,
)
from .ccsexec import CCSExecutor

__all__ = [
    "Executor",
    "AsyncExecutor",
    "SyncExecutorAdapter",
    "LatencyExecutor",
    "ensure_async_executor",
    "DomExecutor",
    "ActionFailed",
    "CCSDefinitions",
    "Process",
    "Nil",
    "Prefix",
    "Choice",
    "Parallel",
    "Restrict",
    "Relabel",
    "Ref",
    "TAU",
    "parse_ccs",
    "parse_definitions",
    "transitions",
    "enabled_labels",
    "CCSParseError",
    "CCSExecutor",
]
