"""Executors: the systems the checker can drive."""

from .base import ActionFailed, Executor
from .domexec import DomExecutor
from .ccs import (
    CCSDefinitions,
    Process,
    Nil,
    Prefix,
    Choice,
    Parallel,
    Restrict,
    Relabel,
    Ref,
    TAU,
    parse_ccs,
    parse_definitions,
    transitions,
    enabled_labels,
    CCSParseError,
)
from .ccsexec import CCSExecutor

__all__ = [
    "Executor",
    "DomExecutor",
    "ActionFailed",
    "CCSDefinitions",
    "Process",
    "Nil",
    "Prefix",
    "Choice",
    "Parallel",
    "Restrict",
    "Relabel",
    "Ref",
    "TAU",
    "parse_ccs",
    "parse_definitions",
    "transitions",
    "enabled_labels",
    "CCSParseError",
    "CCSExecutor",
]
