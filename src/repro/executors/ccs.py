"""Milner's Calculus of Communicating Systems: syntax and semantics.

The paper (Section 3.4) mentions a second executor "which interprets
models written in Milner's Calculus of Communicating Systems", used to
test the Specstrom interpreter without a browser.  This module is a
complete small CCS: process terms, the structural operational semantics
(labelled transition relation), and a parser for a conventional textual
syntax::

    0                   inaction
    a.P                 action prefix
    'a.P                co-action prefix (output)
    tau.P               internal action
    P + Q               choice
    P | Q               parallel composition (a with 'a synchronises to tau)
    P \\ {a, b}          restriction
    P [a/b]             relabelling (new/old)
    X                   process identifier (defined via equations)

Definitions are given as equations ``X = term`` and may be recursive
(CCS models are allowed to loop; it is *Specstrom* that bans recursion).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

__all__ = [
    "Label",
    "TAU",
    "complement",
    "Process",
    "Nil",
    "Prefix",
    "Choice",
    "Parallel",
    "Restrict",
    "Relabel",
    "Ref",
    "CCSDefinitions",
    "transitions",
    "enabled_labels",
    "parse_ccs",
    "parse_definitions",
    "CCSParseError",
]

#: Labels are plain strings; co-names carry a leading apostrophe.
Label = str
TAU: Label = "tau"


def complement(label: Label) -> Label:
    """The co-name: ``a`` <-> ``'a`` (tau has no complement)."""
    if label == TAU:
        raise ValueError("tau has no complement")
    if label.startswith("'"):
        return label[1:]
    return "'" + label


def base_name(label: Label) -> str:
    return label[1:] if label.startswith("'") else label


class Process:
    """Base class for CCS process terms."""

    __slots__ = ()


@dataclass(frozen=True)
class Nil(Process):
    def __str__(self) -> str:
        return "0"


@dataclass(frozen=True)
class Prefix(Process):
    label: Label
    continuation: Process

    def __str__(self) -> str:
        return f"{self.label}.{self.continuation}"


@dataclass(frozen=True)
class Choice(Process):
    left: Process
    right: Process

    def __str__(self) -> str:
        return f"({self.left} + {self.right})"


@dataclass(frozen=True)
class Parallel(Process):
    left: Process
    right: Process

    def __str__(self) -> str:
        return f"({self.left} | {self.right})"


@dataclass(frozen=True)
class Restrict(Process):
    body: Process
    labels: FrozenSet[str]  # base names

    def __str__(self) -> str:
        inner = ", ".join(sorted(self.labels))
        return f"({self.body} \\ {{{inner}}})"


@dataclass(frozen=True)
class Relabel(Process):
    body: Process
    mapping: Tuple[Tuple[str, str], ...]  # (new, old) base-name pairs

    def __str__(self) -> str:
        inner = ", ".join(f"{new}/{old}" for new, old in self.mapping)
        return f"({self.body} [{inner}])"


@dataclass(frozen=True)
class Ref(Process):
    name: str

    def __str__(self) -> str:
        return self.name


class CCSDefinitions:
    """A system of process equations."""

    def __init__(self, equations: Optional[Mapping[str, Process]] = None) -> None:
        self.equations: Dict[str, Process] = dict(equations or {})

    def define(self, name: str, process: Process) -> None:
        self.equations[name] = process

    def resolve(self, name: str) -> Process:
        try:
            return self.equations[name]
        except KeyError:
            raise KeyError(f"undefined CCS process {name!r}") from None


def transitions(
    process: Process, defs: Optional[CCSDefinitions] = None, _depth: int = 0
) -> List[Tuple[Label, Process]]:
    """The SOS transition relation: all ``(label, successor)`` pairs."""
    if _depth > 500:
        raise RecursionError("unguarded recursion in CCS definitions")
    defs = defs or CCSDefinitions()
    if isinstance(process, Nil):
        return []
    if isinstance(process, Prefix):
        return [(process.label, process.continuation)]
    if isinstance(process, Choice):
        return transitions(process.left, defs, _depth + 1) + transitions(
            process.right, defs, _depth + 1
        )
    if isinstance(process, Parallel):
        result: List[Tuple[Label, Process]] = []
        left_moves = transitions(process.left, defs, _depth + 1)
        right_moves = transitions(process.right, defs, _depth + 1)
        for label, successor in left_moves:
            result.append((label, Parallel(successor, process.right)))
        for label, successor in right_moves:
            result.append((label, Parallel(process.left, successor)))
        # Communication: a on one side with 'a on the other gives tau.
        for l_label, l_next in left_moves:
            if l_label == TAU:
                continue
            partner = complement(l_label)
            for r_label, r_next in right_moves:
                if r_label == partner:
                    result.append((TAU, Parallel(l_next, r_next)))
        return result
    if isinstance(process, Restrict):
        result = []
        for label, successor in transitions(process.body, defs, _depth + 1):
            if label != TAU and base_name(label) in process.labels:
                continue
            result.append((label, Restrict(successor, process.labels)))
        return result
    if isinstance(process, Relabel):
        mapping = {old: new for new, old in process.mapping}
        result = []
        for label, successor in transitions(process.body, defs, _depth + 1):
            if label == TAU:
                renamed = TAU
            else:
                base = base_name(label)
                renamed_base = mapping.get(base, base)
                renamed = (
                    "'" + renamed_base if label.startswith("'") else renamed_base
                )
            result.append((renamed, Relabel(successor, process.mapping)))
        return result
    if isinstance(process, Ref):
        return transitions(defs.resolve(process.name), defs, _depth + 1)
    raise TypeError(f"unknown CCS term {type(process).__name__}")


def enabled_labels(process: Process, defs: Optional[CCSDefinitions] = None) -> List[Label]:
    """Sorted distinct labels the process can currently perform."""
    return sorted({label for label, _ in transitions(process, defs)})


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


class CCSParseError(ValueError):
    """Malformed CCS source."""


_CCS_TOKEN = re.compile(
    r"\s*(?:(?P<name>'?[A-Za-z_][A-Za-z0-9_]*|0)|(?P<punct>[().+|\\{},/\[\]=]))"
)


def _tokenize(source: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(source):
        match = _CCS_TOKEN.match(source, pos)
        if match is None or match.end() == pos:
            rest = source[pos:].strip()
            if not rest:
                break
            raise CCSParseError(f"unexpected character {rest[0]!r}")
        tokens.append(match.group("name") or match.group("punct"))
        pos = match.end()
    return tokens


class _CCSParser:
    """Precedence: ``+``  <  ``|``  <  postfix (``\\``, ``[]``) < prefix."""

    def __init__(self, tokens: List[str]) -> None:
        self._tokens = tokens
        self._pos = 0

    def peek(self) -> Optional[str]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise CCSParseError("unexpected end of input")
        self._pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise CCSParseError(f"expected {token!r}, got {got!r}")

    def parse(self) -> Process:
        process = self.choice()
        if self.peek() is not None:
            raise CCSParseError(f"trailing input at {self.peek()!r}")
        return process

    def choice(self) -> Process:
        left = self.parallel()
        while self.peek() == "+":
            self.next()
            left = Choice(left, self.parallel())
        return left

    def parallel(self) -> Process:
        left = self.postfix()
        while self.peek() == "|":
            self.next()
            left = Parallel(left, self.postfix())
        return left

    def postfix(self) -> Process:
        process = self.prefix()
        while True:
            token = self.peek()
            if token == "\\":
                self.next()
                self.expect("{")
                labels = set()
                if self.peek() != "}":
                    while True:
                        labels.add(self.next())
                        if self.peek() == "}":
                            break
                        self.expect(",")
                self.expect("}")
                process = Restrict(process, frozenset(labels))
            elif token == "[":
                self.next()
                pairs = []
                while True:
                    new = self.next()
                    self.expect("/")
                    old = self.next()
                    pairs.append((new, old))
                    if self.peek() == "]":
                        break
                    self.expect(",")
                self.expect("]")
                process = Relabel(process, tuple(pairs))
            else:
                return process

    def prefix(self) -> Process:
        token = self.peek()
        if token == "(":
            self.next()
            inner = self.choice()
            self.expect(")")
            return inner
        name = self.next()
        if name in ("0", "nil"):
            return Nil()
        if not re.fullmatch(r"'?[A-Za-z_][A-Za-z0-9_]*", name):
            raise CCSParseError(f"expected a process term, got {name!r}")
        if self.peek() == ".":
            self.next()
            return Prefix(name, self.prefix_tail())
        # Identifiers starting upper-case are process references; a bare
        # lower-case name is a prefix of Nil (``a`` means ``a.0``).
        if name[0].isupper():
            return Ref(name)
        return Prefix(name, Nil())

    def prefix_tail(self) -> Process:
        token = self.peek()
        if token == "(":
            return self.prefix()
        name = self.next()
        if name in ("0", "nil"):
            return Nil()
        if self.peek() == ".":
            self.next()
            return Prefix(name, self.prefix_tail())
        if name[0].isupper():
            return Ref(name)
        return Prefix(name, Nil())


def parse_ccs(source: str) -> Process:
    """Parse one CCS process term."""
    tokens = _tokenize(source)
    # '0' lexes via the punct/name patterns oddly; normalise: the token
    # regex has no digits, so handle '0' textually.
    tokens = ["0" if t == "0" else t for t in tokens]
    return _CCSParser(tokens).parse()


def parse_definitions(source: str) -> Tuple[CCSDefinitions, Optional[Process]]:
    """Parse a system of equations, one per line (``X = term``), with an
    optional final bare term as the initial process."""
    defs = CCSDefinitions()
    initial: Optional[Process] = None
    for raw_line in source.splitlines():
        line = raw_line.split("//")[0].strip()
        if not line:
            continue
        if "=" in line:
            name, _, term = line.partition("=")
            name = name.strip()
            if not re.fullmatch(r"[A-Z][A-Za-z0-9_]*", name):
                raise CCSParseError(
                    f"process names must start upper-case: {name!r}"
                )
            defs.define(name, parse_ccs(term.strip()))
        else:
            initial = parse_ccs(line)
    return defs, initial
