"""The simulated-browser executor (the reproduction's "WebDriver executor").

Maps resolved primitive actions to gestures on
:class:`repro.browser.Browser`, takes state snapshots restricted to the
specification's dependency set, watches ``changed?`` selectors for
asynchronous changes, and implements the version/staleness rule.

Snapshot discipline: a state is snapshotted immediately after the
triggering activity (action performed, event batch fired, timeout
elapsed) and is deeply immutable, so later DOM changes cannot leak into
already-reported states.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..browser.webdriver import Browser, NotInteractableError, Page
from ..protocol.messages import Acted, Act, Event, Narrow, Reset, Start, Timeout
from ..protocol.session import TraceRecorder
from ..specstrom.actions import PrimitiveEvent, ResolvedAction
from ..specstrom.state import ElementSnapshot, StateSnapshot
from .base import ActionFailed, Executor

__all__ = ["DomExecutor", "ActionFailed"]


class DomExecutor(Executor):
    """Executor over the simulated browser.

    ``app_factory`` builds the application under test from a
    :class:`repro.browser.Page` (see :mod:`repro.apps`).
    """

    def __init__(self, app_factory: Callable[[Page], object]) -> None:
        self._app_factory = app_factory
        self.browser: Optional[Browser] = None
        self.recorder = TraceRecorder()
        self._outbox: List[object] = []
        self._dependencies: Tuple[str, ...] = ()
        #: The selectors snapshots actually capture: the full dependency
        #: set after start/reset, possibly a subset after ``Narrow``.
        self._active: Tuple[str, ...] = ()
        self._watched: Tuple[Tuple[str, PrimitiveEvent], ...] = ()
        self._last_watch_state: Dict[str, Tuple[ElementSnapshot, ...]] = {}

    # ------------------------------------------------------------------
    # Executor interface
    # ------------------------------------------------------------------

    def start(self, start: Start) -> None:
        self._dependencies = tuple(sorted(start.dependencies))
        self._active = self._dependencies
        self._watched = tuple(start.events)
        self.browser = Browser(self._app_factory)
        self.browser.load()
        self._remember_watches()
        self._report("event", ("loaded?",))

    def reset(self, reset: Reset) -> bool:
        """Warm restart: keep the browser, remount the application.

        The browser object survives (in a real WebDriver backend this is
        the expensive session), but its storage, clock, timers and the
        mounted application are all returned to their pristine state, so
        the new session is observationally identical to a cold
        ``start`` -- same initial snapshot, same versions, same virtual
        time origin.  The new session's dependency set and watched
        events replace the old ones (warm reuse spans properties).
        """
        if self.browser is None:
            return False  # never started; nothing warm to reuse
        self._dependencies = tuple(sorted(reset.dependencies))
        self._active = self._dependencies
        self._watched = tuple(reset.events)
        self.recorder = TraceRecorder()
        self._outbox = []
        self._last_watch_state = {}
        self.browser.reset()
        self._remember_watches()
        self._report("event", ("loaded?",))
        return True

    def narrow(self, narrow: Narrow) -> bool:
        """Capture only the requested (still-instrumented) selectors in
        subsequent snapshots.  Already-reported states are immutable and
        unaffected; ``start``/``reset`` restore full capture."""
        if self.browser is None:
            return False
        self._active = tuple(
            sorted(set(narrow.dependencies) & set(self._dependencies))
        )
        return True

    def drain(self) -> List[object]:
        messages, self._outbox = self._outbox, []
        return messages

    def act(self, act: Act) -> bool:
        if self.recorder.is_stale(act.version):
            self.recorder.note_stale_rejection()
            return False
        self._perform(act.action)
        happened: Tuple[str, ...] = (act.name,)
        if act.action.kind == "reload":
            happened = (act.name, "loaded?")
            self._remember_watches()
        self._report("acted", happened)
        return True

    def pass_time(self, delta_ms: float) -> None:
        self._advance_with_watching(self._clock_now() + delta_ms)

    def await_events(self, timeout_ms: float) -> None:
        deadline = self._clock_now() + timeout_ms
        fired = self._advance_with_watching(deadline, stop_on_event=True)
        if not fired:
            self._report("timeout", ())

    @property
    def version(self) -> int:
        return self.recorder.length

    @property
    def now_ms(self) -> float:
        return self._clock_now()

    # ------------------------------------------------------------------
    # Gestures
    # ------------------------------------------------------------------

    def _perform(self, action: ResolvedAction) -> None:
        browser = self._require_browser()
        kind = action.kind
        if kind == "noop":
            return
        if kind == "reload":
            browser.reload()
            return
        target = self._resolve_target(action)
        try:
            if kind == "click":
                browser.click(target)
            elif kind == "dblclick":
                browser.dblclick(target)
            elif kind == "hover":
                browser.hover(target)
            elif kind == "focus":
                browser.focus(target)
            elif kind == "clear":
                browser.clear(target)
            elif kind == "input":
                browser.clear(target)
                browser.type_text(str(action.args[0]), element=target)
            elif kind == "pressKey":
                browser.focus(target)
                browser.press_key(str(action.args[0]))
            else:
                raise ActionFailed(f"unknown primitive action {kind!r}")
        except NotInteractableError as err:
            raise ActionFailed(str(err)) from err

    def _resolve_target(self, action: ResolvedAction):
        browser = self._require_browser()
        if action.selector is None:
            raise ActionFailed(f"{action.kind} needs a selector")
        matches = [
            el
            for el in browser.document.query_all(action.selector)
            if el.visible
        ]
        index = action.index or 0
        if index >= len(matches):
            raise ActionFailed(
                f"{action.describe()} has no target "
                f"({len(matches)} visible matches)"
            )
        return matches[index]

    # ------------------------------------------------------------------
    # Snapshots and event watching
    # ------------------------------------------------------------------

    def _snapshot(self, happened: Tuple[str, ...]) -> StateSnapshot:
        browser = self._require_browser()
        document = browser.document
        queries = {}
        for selector in self._active:
            queries[selector] = tuple(
                ElementSnapshot.of_element(el, document)
                for el in document.query_all(selector)
            )
        return StateSnapshot(
            queries=queries,
            happened=happened,
            version=self.recorder.length + 1,
            timestamp_ms=self._clock_now(),
        )

    def _report(self, kind: str, happened: Tuple[str, ...]) -> None:
        state = self._snapshot(happened)
        self.recorder.append(kind, happened, state)
        if kind == "acted":
            self._outbox.append(Acted(happened[0], state))
        elif kind == "timeout":
            self._outbox.append(Timeout(state))
        else:
            self._outbox.append(Event(happened[0] if happened else "event?", state))
        self._remember_watches()

    def _watch_snapshot(self, css: str) -> Tuple[ElementSnapshot, ...]:
        browser = self._require_browser()
        document = browser.document
        return tuple(
            ElementSnapshot.of_element(el, document) for el in document.query_all(css)
        )

    def _remember_watches(self) -> None:
        self._last_watch_state = {
            event.selector: self._watch_snapshot(event.selector)
            for _, event in self._watched
            if event.selector is not None
        }

    def _changed_watches(self) -> Tuple[str, ...]:
        """Names of watched events whose selector state changed."""
        changed: List[str] = []
        for name, event in self._watched:
            if event.selector is None:
                continue
            current = self._watch_snapshot(event.selector)
            if current != self._last_watch_state.get(event.selector):
                changed.append(name)
        return tuple(changed)

    def _advance_with_watching(self, target_ms: float, stop_on_event: bool = False) -> bool:
        """Advance time deadline-by-deadline, reporting watched changes.

        Returns True if any event was reported.  With ``stop_on_event``
        the advance stops at the first event batch (used by timeouts:
        'after the given time if no event occurs first', Figure 9).
        """
        browser = self._require_browser()
        scheduler = browser.scheduler
        any_event = False
        while True:
            deadline = scheduler.next_deadline
            if deadline is None or deadline > target_ms:
                break
            scheduler.run_until(deadline)
            changed = self._changed_watches()
            if changed:
                any_event = True
                self._report("event", changed)
                if stop_on_event:
                    return True
        if target_ms > self._clock_now():
            scheduler.run_until(target_ms)
            changed = self._changed_watches()
            if changed:
                any_event = True
                self._report("event", changed)
        return any_event

    # ------------------------------------------------------------------

    def _require_browser(self) -> Browser:
        if self.browser is None:
            raise RuntimeError("executor not started")
        return self.browser

    def _clock_now(self) -> float:
        return self.browser.clock.now if self.browser is not None else 0.0
