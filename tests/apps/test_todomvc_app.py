"""The DOM-backed TodoMVC app: behaviour and equivalence with the model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.apps.todomvc import TodoModel, todomvc_app
from repro.browser import Browser
from tests.strategies import examples


@pytest.fixture()
def browser():
    b = Browser(todomvc_app())
    b.load()
    return b


def add_item(browser, text):
    field = browser.document.query_one(".new-todo")
    browser.clear(field)
    browser.type_text(text, element=field)
    browser.press_key("Enter")


def labels(browser, visible_only=False):
    items = browser.document.query_all(".todo-list li label")
    if visible_only:
        items = [el for el in items if el.visible]
    return [el.text for el in items]


class TestCreating:
    def test_add_item(self, browser):
        add_item(browser, "walk")
        assert labels(browser) == ["walk"]
        assert browser.document.query_one(".new-todo").value == ""

    def test_add_trims(self, browser):
        add_item(browser, "  walk  ")
        assert labels(browser) == ["walk"]

    def test_blank_input_ignored(self, browser):
        add_item(browser, "   ")
        assert labels(browser) == []
        # pending input untouched
        assert browser.document.query_one(".new-todo").value == "   "

    def test_chrome_hidden_when_empty(self, browser):
        assert not browser.document.query_one(".footer").visible
        assert not browser.document.query_one(".toggle-all").visible
        add_item(browser, "x")
        assert browser.document.query_one(".footer").visible
        assert browser.document.query_one(".toggle-all").visible


class TestToggling:
    def test_toggle_one(self, browser):
        add_item(browser, "a")
        browser.click(browser.document.query_one(".toggle"))
        assert browser.document.query_one("li").has_class("completed")

    def test_toggle_all(self, browser):
        add_item(browser, "a")
        add_item(browser, "b")
        browser.click(browser.document.query_one(".toggle-all"))
        assert len(browser.document.query_all("li.completed")) == 2
        browser.click(browser.document.query_one(".toggle-all"))
        assert len(browser.document.query_all("li.completed")) == 0

    def test_count_text(self, browser):
        add_item(browser, "a")
        assert browser.document.query_one(".todo-count").text == "1 item left"
        add_item(browser, "b")
        assert browser.document.query_one(".todo-count").text == "2 items left"
        assert browser.document.query_one(".todo-count strong").text == "2"


class TestFilters:
    def test_filter_routing(self, browser):
        add_item(browser, "a")
        add_item(browser, "b")
        browser.click(browser.document.query_one(".toggle"))  # complete 'a'
        active_link = [
            el for el in browser.document.query_all(".filters a")
            if el.text == "Active"
        ][0]
        browser.click(active_link)
        assert labels(browser, visible_only=True) == ["b"]
        assert active_link.has_class("selected")

    def test_filter_preserves_pending_input(self, browser):
        add_item(browser, "a")
        field = browser.document.query_one(".new-todo")
        browser.type_text("pending", element=field)
        browser.click(browser.document.query_all(".filters a")[1])
        assert field.value == "pending"

    def test_items_stay_in_dom_when_filtered(self, browser):
        add_item(browser, "a")
        browser.click(browser.document.query_one(".toggle"))
        browser.click(browser.document.query_all(".filters a")[1])  # Active
        assert labels(browser) == ["a"]  # still present
        assert labels(browser, visible_only=True) == []


class TestEditing:
    def enter_edit(self, browser, index=0):
        label = browser.document.query_all(".todo-list li label")[index]
        browser.dblclick(label)
        return browser.document.query_one(".todo-list li.editing .edit")

    def test_dblclick_enters_editing_focused(self, browser):
        add_item(browser, "a")
        edit = self.enter_edit(browser)
        assert edit is not None
        assert browser.document.active_element is edit
        assert edit.value == "a"

    def test_commit_edit(self, browser):
        add_item(browser, "a")
        edit = self.enter_edit(browser)
        browser.clear(edit)
        browser.type_text("b", element=edit)
        browser.press_key("Enter")
        assert labels(browser) == ["b"]
        assert not browser.document.query_all(".todo-list li.editing")

    def test_commit_empty_deletes(self, browser):
        add_item(browser, "a")
        add_item(browser, "b")
        edit = self.enter_edit(browser, index=0)
        browser.clear(edit)
        browser.press_key("Enter")
        assert labels(browser) == ["b"]

    def test_abort_restores(self, browser):
        add_item(browser, "a")
        edit = self.enter_edit(browser)
        browser.clear(edit)
        browser.type_text("zzz", element=edit)
        browser.press_key("Escape")
        assert labels(browser) == ["a"]


class TestDeleting:
    def test_destroy_button(self, browser):
        add_item(browser, "a")
        add_item(browser, "b")
        browser.click(browser.document.query_all(".destroy")[0])
        assert labels(browser) == ["b"]

    def test_clear_completed(self, browser):
        add_item(browser, "a")
        add_item(browser, "b")
        browser.click(browser.document.query_all(".toggle")[0])
        assert browser.document.query_one(".clear-completed").visible
        browser.click(browser.document.query_one(".clear-completed"))
        assert labels(browser) == ["b"]
        assert not browser.document.query_one(".clear-completed").visible


class TestPersistence:
    def test_items_survive_reload(self, browser):
        add_item(browser, "a")
        browser.click(browser.document.query_one(".toggle"))
        browser.reload()
        assert labels(browser) == ["a"]
        assert browser.document.query_one("li").has_class("completed")

    def test_filter_survives_reload_via_hash(self, browser):
        add_item(browser, "a")
        browser.click(browser.document.query_all(".filters a")[1])
        browser.reload()
        selected = browser.document.query_one(".filters a.selected")
        assert selected.text == "Active"


# ----------------------------------------------------------------------
# Model equivalence: random gesture scripts drive both the DOM app and
# the pure model; their observable states must coincide.
# ----------------------------------------------------------------------

gestures = st.sampled_from(
    ["add", "toggle", "toggle_all", "delete", "clear_completed", "filter"]
)


@given(st.lists(st.tuples(gestures, st.integers(0, 4),
                          st.text(alphabet="ab ", min_size=0, max_size=5)),
                max_size=25))
@examples(120)
def test_app_equals_model_under_random_gestures(script):
    browser = Browser(todomvc_app())
    browser.load()
    model = TodoModel()
    doc = browser.document
    for op, index, text in script:
        if op == "add":
            add_item(browser, text)
            model = model.add(text)
        elif op == "toggle":
            toggles = doc.query_all(".todo-list li .toggle")
            if toggles:
                i = index % len(toggles)
                if toggles[i].visible:
                    browser.click(toggles[i])
                    model = model.toggle(i)
        elif op == "toggle_all":
            control = doc.query_one(".toggle-all")
            if control.visible:
                browser.click(control)
                model = model.toggle_all()
        elif op == "delete":
            destroys = doc.query_all(".todo-list li .destroy")
            if destroys:
                i = index % len(destroys)
                if destroys[i].visible:
                    browser.click(destroys[i])
                    model = model.delete(i)
        elif op == "clear_completed":
            button = doc.query_one(".clear-completed")
            if button.visible:
                browser.click(button)
                model = model.clear_completed()
        elif op == "filter":
            links = doc.query_all(".filters a")
            if links and links[0].visible:
                i = index % 3
                browser.click(links[i])
                model = model.set_filter(("all", "active", "completed")[i])
        # Observable equivalence after every step:
        dom_texts = [el.text for el in doc.query_all(".todo-list li label")]
        assert dom_texts == [item.text for item in model.items]
        dom_completed = [
            el.has_class("completed") for el in doc.query_all(".todo-list li")
        ]
        assert dom_completed == [item.completed for item in model.items]
        visible = [
            el.text
            for el in doc.query_all(".todo-list li label")
            if el.visible
        ]
        assert visible == [item.text for item in model.visible_items()]
        if model.items:
            assert doc.query_one(".todo-count").text == model.count_text()
