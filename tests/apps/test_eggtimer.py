"""The egg-timer application (Section 3.2)."""


from repro.apps.eggtimer import egg_timer_app
from repro.browser import Browser


def make(browser_kwargs=None, **app_kwargs):
    browser = Browser(egg_timer_app(**app_kwargs))
    browser.load()
    return browser


def toggle(browser):
    return browser.document.get_element_by_id("toggle")


def remaining(browser):
    return int(browser.document.get_element_by_id("remaining").text)


class TestBasicOperation:
    def test_initial_state(self):
        browser = make()
        assert toggle(browser).text == "start"
        assert remaining(browser) == 180

    def test_start_changes_button(self):
        browser = make()
        browser.click(toggle(browser))
        assert toggle(browser).text == "stop"

    def test_ticks_once_per_second(self):
        browser = make()
        browser.click(toggle(browser))
        browser.advance(5000)
        assert remaining(browser) == 175

    def test_stop_pauses(self):
        browser = make()
        browser.click(toggle(browser))
        browser.advance(3000)
        browser.click(toggle(browser))
        browser.advance(10000)
        assert remaining(browser) == 177
        assert toggle(browser).text == "start"

    def test_restart_resumes_from_pause(self):
        browser = make()
        browser.click(toggle(browser))
        browser.advance(3000)
        browser.click(toggle(browser))
        browser.click(toggle(browser))
        browser.advance(2000)
        assert remaining(browser) == 175

    def test_reaching_zero_stops(self):
        browser = make(initial_seconds=3)
        browser.click(toggle(browser))
        browser.advance(10000)
        assert remaining(browser) == 0
        assert toggle(browser).text == "start"

    def test_start_at_zero_does_nothing(self):
        browser = make(initial_seconds=0)
        browser.click(toggle(browser))
        assert toggle(browser).text == "start"


class TestResetVariant:
    def test_stop_resets_to_initial(self):
        browser = make(pause_on_stop=False, initial_seconds=60)
        browser.click(toggle(browser))
        browser.advance(5000)
        browser.click(toggle(browser))
        assert remaining(browser) == 60


class TestBuggyVariants:
    def test_double_decrement(self):
        browser = make(decrement=2)
        browser.click(toggle(browser))
        browser.advance(3000)
        assert remaining(browser) == 174

    def test_frozen_display(self):
        browser = make(stuck_at=178, initial_seconds=180)
        browser.click(toggle(browser))
        browser.advance(5000)
        # The model keeps counting; the display froze at 178.
        assert remaining(browser) == 178

    def test_frozen_display_never_reaches_zero_visibly(self):
        browser = make(stuck_at=2, initial_seconds=3)
        browser.click(toggle(browser))
        browser.advance(10000)
        assert remaining(browser) == 2
        assert toggle(browser).text == "start"  # model still stopped
