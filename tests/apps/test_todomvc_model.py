"""The pure TodoMVC model (the oracle)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.apps.todomvc import TodoItem, TodoModel
from tests.strategies import examples


class TestAdd:
    def test_add_trims(self):
        model = TodoModel().add("  walk  ")
        assert model.items == (TodoItem("walk"),)

    def test_add_blank_ignored(self):
        assert TodoModel().add("   ").items == ()
        assert TodoModel().add("").items == ()

    def test_add_appends_uncompleted(self):
        model = TodoModel().add("a").add("b")
        assert [i.text for i in model.items] == ["a", "b"]
        assert all(not i.completed for i in model.items)


class TestToggle:
    def test_toggle_one(self):
        model = TodoModel().add("a").toggle(0)
        assert model.items[0].completed
        assert not model.toggle(0).items[0].completed

    def test_toggle_all_completes_when_any_active(self):
        model = TodoModel().add("a").add("b").toggle(0).toggle_all()
        assert all(i.completed for i in model.items)

    def test_toggle_all_uncompletes_when_all_completed(self):
        model = TodoModel().add("a").add("b").toggle_all().toggle_all()
        assert all(not i.completed for i in model.items)

    def test_toggle_all_empty_noop(self):
        assert TodoModel().toggle_all().items == ()


class TestEditDelete:
    def test_edit_replaces_trimmed(self):
        model = TodoModel().add("a").edit(0, "  b  ")
        assert model.items[0].text == "b"

    def test_edit_empty_deletes(self):
        model = TodoModel().add("a").add("b").edit(0, "   ")
        assert [i.text for i in model.items] == ["b"]

    def test_delete(self):
        model = TodoModel().add("a").add("b").delete(0)
        assert [i.text for i in model.items] == ["b"]

    def test_clear_completed(self):
        model = TodoModel().add("a").add("b").toggle(0).clear_completed()
        assert [i.text for i in model.items] == ["b"]


class TestDerived:
    def test_counts(self):
        model = TodoModel().add("a").add("b").toggle(0)
        assert model.active_count == 1
        assert model.completed_count == 1

    def test_count_text_pluralisation(self):
        assert TodoModel().add("a").count_text() == "1 item left"
        assert TodoModel().add("a").add("b").count_text() == "2 items left"
        assert TodoModel().count_text() == "0 items left"

    def test_visible_items_by_filter(self):
        model = TodoModel().add("a").add("b").toggle(0)
        assert [i.text for i in model.set_filter("active").visible_items()] == ["b"]
        assert [i.text for i in model.set_filter("completed").visible_items()] == ["a"]
        assert len(model.visible_items()) == 2

    def test_unknown_filter_rejected(self):
        with pytest.raises(ValueError):
            TodoModel().set_filter("bogus")

    def test_all_completed(self):
        assert not TodoModel().all_completed
        assert TodoModel().add("a").toggle(0).all_completed


class TestPersistence:
    def test_json_roundtrip(self):
        model = TodoModel().add("a").add("b").toggle(1)
        restored = TodoModel.from_json(model.to_json())
        assert restored.items == model.items

    def test_from_json_tolerates_garbage(self):
        model = TodoModel.from_json([{"bogus": 1}, {"title": "x"}])
        assert [i.text for i in model.items] == ["", "x"]
        assert TodoModel.from_json(None).items == ()


# Property-based: the model never reaches inconsistent states.

ops = st.sampled_from(["add", "toggle", "toggle_all", "delete", "edit",
                       "clear_completed", "filter"])


@given(st.lists(st.tuples(ops, st.integers(0, 5), st.text(max_size=6)),
                max_size=30))
@examples(200)
def test_model_invariants_under_random_operations(script):
    model = TodoModel()
    for op, index, text in script:
        if op == "add":
            model = model.add(text)
        elif op == "toggle" and model.items:
            model = model.toggle(index % len(model.items))
        elif op == "toggle_all":
            model = model.toggle_all()
        elif op == "delete" and model.items:
            model = model.delete(index % len(model.items))
        elif op == "edit" and model.items:
            model = model.edit(index % len(model.items), text)
        elif op == "clear_completed":
            model = model.clear_completed()
        elif op == "filter":
            model = model.set_filter(("all", "active", "completed")[index % 3])
        # Invariants:
        assert model.active_count + model.completed_count == len(model.items)
        assert all(i.text == i.text.strip() and i.text for i in model.items)
        assert len(model.visible_items()) <= len(model.items)
        if model.filter == "active":
            assert all(not i.completed for i in model.visible_items())
        if model.filter == "completed":
            assert all(i.completed for i in model.visible_items())


@given(st.lists(st.text(min_size=1, max_size=6), max_size=8))
@examples(100)
def test_toggle_all_twice_restores_mixed_state_to_all_active(texts):
    model = TodoModel()
    for text in texts:
        model = model.add(text)
    if not model.items:
        return
    double = model.toggle_all().toggle_all()
    assert all(not i.completed for i in double.items)
