"""Fault injection: every Table 2 problem class is caught by the spec.

These are the reproduction's most important integration tests: for each
of the fourteen problem classes, the corresponding faulty application
must be *caught* (negative verdict) by the formal TodoMVC specification,
while the reference application passes.
"""

import pytest

from repro.apps.todomvc import (
    FAULT_DESCRIPTIONS,
    Faults,
    all_implementations,
    failing_implementations,
    fault_by_number,
    implementation_named,
    passing_implementations,
    todomvc_app,
)
from repro.checker import Runner, RunnerConfig
from repro.executors import DomExecutor
from repro.specs import load_todomvc_spec
from repro.specstrom.actions import ResolvedAction


@pytest.fixture(scope="module")
def safety():
    return load_todomvc_spec(default_subscript=50).check_named("safety")


@pytest.fixture(scope="module")
def persistence():
    return load_todomvc_spec(default_subscript=50).check_named("persistence")


def campaign(check, faults, tests=25, actions=50, seed=0):
    factory = lambda: DomExecutor(todomvc_app(faults))
    config = RunnerConfig(
        tests=tests, scheduled_actions=actions, demand_allowance=20,
        seed=seed, shrink=False,
    )
    return Runner(check, factory, config).run()


class TestReferencePasses:
    def test_reference_implementation_passes(self, safety):
        result = campaign(safety, None, tests=6)
        assert result.passed, result.counterexample and result.counterexample.describe()

    def test_reference_persistence_passes(self, persistence):
        result = campaign(persistence, None, tests=4)
        assert result.passed


class TestShallowFaultsCaught:
    """Problems the paper says are easily found (1-10, 12-14)."""

    @pytest.mark.parametrize("number", [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 13, 14])
    def test_fault_caught(self, safety, number):
        result = campaign(safety, fault_by_number(number))
        description = FAULT_DESCRIPTIONS[number][1]
        assert not result.passed, f"problem {number} not caught: {description}"


class TestDeepFaultEleven:
    """Problem 11 'is particularly involved to uncover' (paper 4.2): the
    scripted minimal scenario must fail definitively, and random search
    at the paper's default subscript must find it."""

    SEQUENCE = [
        ("enterText!", ResolvedAction("input", ".new-todo", 0, ("alpha",))),
        ("addNew!", ResolvedAction("pressKey", ".new-todo", 0, ("Enter",))),
        ("enterText!", ResolvedAction("input", ".new-todo", 0, ("beta",))),
        ("addNew!", ResolvedAction("pressKey", ".new-todo", 0, ("Enter",))),
        ("enterEditMode!", ResolvedAction("dblclick", ".todo-list li label", 0, ())),
        ("clearEdit!", ResolvedAction("clear", ".todo-list li.editing .edit", 0, ())),
        ("commitEdit!", ResolvedAction("pressKey", ".todo-list li.editing .edit", 0, ("Enter",))),
        ("toggleAll!", ResolvedAction("click", ".toggle-all", 0, ())),
    ]

    def test_scripted_zombie_resurrection_fails(self, safety):
        factory = lambda: DomExecutor(todomvc_app(fault_by_number(11)))
        runner = Runner(safety, factory, RunnerConfig(seed=0))
        result = runner.replay(self.SEQUENCE)
        assert result is not None
        assert result.verdict.is_negative

    def test_zombie_invisible_at_commit_time(self, safety):
        """Stopping right after the empty commit shows nothing wrong --
        that is what makes the bug deep."""
        factory = lambda: DomExecutor(todomvc_app(fault_by_number(11)))
        runner = Runner(safety, factory, RunnerConfig(seed=0))
        result = runner.replay(self.SEQUENCE[:-1])
        assert result is not None
        assert not result.verdict.is_negative

    def test_found_by_random_search_at_default_subscript(self):
        spec = load_todomvc_spec(default_subscript=100).check_named("safety")
        result = campaign_with(spec, fault_by_number(11), tests=12,
                               actions=100, seed=4)
        assert not result.passed


def campaign_with(check, faults, tests, actions, seed):
    factory = lambda: DomExecutor(todomvc_app(faults))
    config = RunnerConfig(
        tests=tests, scheduled_actions=actions, demand_allowance=20,
        seed=seed, shrink=False,
    )
    return Runner(check, factory, config).run()


class TestPersistenceExtension:
    def test_broken_persistence_caught(self, persistence):
        result = campaign(persistence, Faults(broken_persistence=True), tests=10)
        assert not result.passed

    def test_broken_persistence_invisible_to_safety(self, safety):
        """Without the reload action, storage bugs cannot be observed."""
        result = campaign(safety, Faults(broken_persistence=True), tests=4)
        assert result.passed


class TestImplementationRegistry:
    def test_population_matches_table1(self):
        impls = all_implementations()
        assert len(impls) == 43
        passing = passing_implementations()
        failing = failing_implementations()
        assert len(passing) == 23
        assert len(failing) == 20
        assert sum(i.beta for i in passing) == 9
        assert sum(i.beta for i in failing) == 8

    def test_fault_counts_match_table2(self):
        from collections import Counter

        counts = Counter(
            n for impl in failing_implementations() for n in impl.fault_numbers
        )
        assert counts[7] == 4  # prose: the most common fault
        assert counts[8] == 2
        assert counts[11] == 1
        assert sum(counts.values()) == 21
        assert set(counts) == set(range(1, 15))

    def test_vanilla_es6_has_two_faults(self):
        assert implementation_named("vanilla-es6").fault_numbers == (8, 3)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            implementation_named("flutter")

    def test_factories_are_runnable(self):
        from repro.browser import Browser

        impl = implementation_named("vanillajs")
        browser = Browser(impl.app_factory())
        browser.load()
        assert browser.document.query_one(".new-todo") is not None
