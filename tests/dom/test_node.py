"""Element tree: attributes, classes, style, visibility, widget state."""


from repro.dom import Document, Element, Text


class TestAttributes:
    def test_get_set_remove(self):
        el = Element("div")
        assert el.get_attribute("data-x") is None
        el.set_attribute("data-x", "1")
        assert el.get_attribute("data-x") == "1"
        assert el.has_attribute("data-x")
        el.remove_attribute("data-x")
        assert not el.has_attribute("data-x")

    def test_remove_missing_attribute_is_noop(self):
        Element("div").remove_attribute("nope")

    def test_id_property(self):
        assert Element("div", {"id": "main"}).id == "main"
        assert Element("div").id is None

    def test_attributes_copy(self):
        el = Element("div", {"a": "1"})
        snapshot = el.attributes
        snapshot["a"] = "2"
        assert el.get_attribute("a") == "1"


class TestClasses:
    def test_classes_parse_class_attribute(self):
        el = Element("div", {"class": "a  b c"})
        assert el.classes == ["a", "b", "c"]

    def test_add_remove_class(self):
        el = Element("div")
        el.add_class("completed")
        assert el.has_class("completed")
        el.add_class("completed")  # idempotent
        assert el.classes == ["completed"]
        el.remove_class("completed")
        assert not el.has_class("completed")

    def test_toggle_class(self):
        el = Element("div")
        el.toggle_class("editing")
        assert el.has_class("editing")
        el.toggle_class("editing")
        assert not el.has_class("editing")
        el.toggle_class("editing", on=True)
        el.toggle_class("editing", on=True)
        assert el.classes == ["editing"]


class TestStyleAndVisibility:
    def test_style_parsing(self):
        el = Element("div", {"style": "display: none; color: red"})
        assert el.style == {"display": "none", "color": "red"}

    def test_set_style_roundtrip(self):
        el = Element("div")
        el.set_style("display", "none")
        assert el.style["display"] == "none"
        el.set_style("display", None)
        assert "style" not in el.attributes

    def test_display_none_hides(self):
        el = Element("div", {"style": "display:none"})
        assert not el.displayed
        assert not el.visible

    def test_hidden_attribute_hides(self):
        assert not Element("div", {"hidden": ""}).visible

    def test_visibility_inherited_from_ancestors(self):
        parent = Element("div", {"style": "display:none"})
        child = Element("span")
        parent.append_child(child)
        assert not child.visible
        parent.set_style("display", None)
        assert child.visible


class TestWidgetState:
    def test_value_live_property(self):
        el = Element("input", {"type": "text"})
        el.value = "hello"
        assert el.value == "hello"

    def test_checked(self):
        box = Element("input", {"type": "checkbox"})
        assert not box.checked
        box.checked = True
        assert box.checked

    def test_is_checkbox(self):
        assert Element("input", {"type": "checkbox"}).is_checkbox
        assert not Element("input", {"type": "text"}).is_checkbox
        assert not Element("div").is_checkbox

    def test_is_text_input(self):
        assert Element("input").is_text_input  # default type is text
        assert Element("input", {"type": "text"}).is_text_input
        assert Element("textarea").is_text_input
        assert not Element("input", {"type": "checkbox"}).is_text_input

    def test_disabled_enabled(self):
        el = Element("button", {"disabled": ""})
        assert el.disabled and not el.enabled


class TestTreeStructure:
    def test_append_and_parent(self):
        parent = Element("ul")
        child = Element("li")
        parent.append_child(child)
        assert child.parent is parent
        assert parent.element_children == [child]

    def test_append_string_becomes_text(self):
        el = Element("p")
        el.append_child("hello")
        assert isinstance(el.children[0], Text)
        assert el.text == "hello"

    def test_append_reparents(self):
        a, b = Element("div"), Element("div")
        child = Element("span")
        a.append_child(child)
        b.append_child(child)
        assert child.parent is b
        assert a.children == []

    def test_insert_before(self):
        ul = Element("ul")
        first = ul.append_child(Element("li", text="1"))
        ul.insert_before(Element("li", text="0"), first)
        assert [li.text for li in ul.element_children] == ["0", "1"]

    def test_insert_before_none_appends(self):
        ul = Element("ul")
        ul.insert_before(Element("li", text="x"), None)
        assert ul.element_children[0].text == "x"

    def test_remove_child(self):
        ul = Element("ul")
        li = ul.append_child(Element("li"))
        ul.remove_child(li)
        assert li.parent is None
        assert ul.children == []

    def test_clear_children(self):
        ul = Element("ul", children=[Element("li"), Element("li")])
        ul.clear_children()
        assert ul.children == []

    def test_text_concatenates_descendants(self):
        el = Element(
            "div",
            children=[Element("span", text="a"), Text("b"), Element("b", text="c")],
        )
        assert el.text == "abc"

    def test_text_setter_replaces_children(self):
        el = Element("div", children=[Element("span", text="old")])
        el.text = "new"
        assert el.text == "new"
        assert el.element_children == []

    def test_iter_elements_document_order(self):
        tree = Element(
            "div",
            children=[
                Element("ul", children=[Element("li"), Element("li")]),
                Element("p"),
            ],
        )
        tags = [el.tag for el in tree.iter_elements()]
        assert tags == ["ul", "li", "li", "p"]

    def test_index_in_parent_counts_elements_only(self):
        ul = Element("ul")
        ul.append_child(Text("ignored"))
        a = ul.append_child(Element("li"))
        b = ul.append_child(Element("li"))
        assert a.index_in_parent == 0
        assert b.index_in_parent == 1


class TestMutationNotification:
    def test_mutations_reach_document_observers(self):
        doc = Document()
        seen = []
        doc.observe_mutations(lambda node: seen.append(node))
        el = Element("div")
        doc.root.append_child(el)
        el.set_attribute("class", "x")
        el.value = "v"
        assert len(seen) >= 3

    def test_detached_mutations_do_not_notify(self):
        doc = Document()
        seen = []
        doc.observe_mutations(lambda node: seen.append(node))
        Element("div").set_attribute("x", "1")
        assert seen == []

    def test_batched_suppresses(self):
        doc = Document()
        seen = []
        doc.observe_mutations(lambda node: seen.append(node))
        with doc.batched():
            doc.root.append_child(Element("div"))
        assert seen == []

    def test_unsubscribe(self):
        doc = Document()
        seen = []
        unsub = doc.observe_mutations(lambda node: seen.append(node))
        unsub()
        doc.root.append_child(Element("div"))
        assert seen == []


class TestSerialisation:
    def test_to_html_smoke(self):
        el = Element("ul", {"class": "list"}, children=[Element("li", text="x")])
        html = el.to_html()
        assert '<ul class="list">' in html
        assert "<li>x</li>" in html
