"""Document-level behaviour not covered by the event/selector suites."""

from repro.dom import Document, Element, Text


class TestLookup:
    def test_get_element_by_id(self):
        doc = Document()
        el = Element("div", {"id": "target"})
        doc.root.append_child(Element("section", children=[el]))
        assert doc.get_element_by_id("target") is el
        assert doc.get_element_by_id("missing") is None

    def test_create_element(self):
        doc = Document()
        el = doc.create_element("span", attrs={"class": "x"}, text="hi")
        assert el.tag == "span"
        assert el.text == "hi"

    def test_query_helpers_use_document_for_focus(self):
        doc = Document()
        field = doc.root.append_child(Element("input"))
        doc.focus(field)
        assert doc.query_one(":focus") is field


class TestOwnership:
    def test_document_property_follows_attachment(self):
        doc = Document()
        el = Element("div")
        assert el.document is None
        doc.root.append_child(el)
        assert el.document is doc
        el.detach()
        assert el.document is None

    def test_subtree_adopts_document(self):
        doc = Document()
        parent = Element("div", children=[Element("span")])
        doc.root.append_child(parent)
        assert parent.element_children[0].document is doc


class TestBatching:
    def test_nested_batches_suppress_until_outermost_exit(self):
        doc = Document()
        seen = []
        doc.observe_mutations(lambda node: seen.append(node))
        with doc.batched():
            with doc.batched():
                doc.root.append_child(Element("div"))
            doc.root.append_child(Element("p"))
        assert seen == []
        doc.root.append_child(Element("b"))
        assert len(seen) == 1

    def test_focus_notifies_mutation_observers(self):
        doc = Document()
        field = doc.root.append_child(Element("input"))
        seen = []
        doc.observe_mutations(lambda node: seen.append(node))
        doc.focus(field)
        assert seen

    def test_text_node_edit_notifies(self):
        doc = Document()
        text = Text("before")
        doc.root.append_child(text)
        seen = []
        doc.observe_mutations(lambda node: seen.append(node))
        text.data = "after"
        assert seen and text.text == "after"
