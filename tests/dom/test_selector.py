"""CSS selector engine: parsing, matching, combinators, pseudo-classes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dom import Document, Element, SelectorError, matches, parse_selector
from repro.dom.selector import query_all
from tests.strategies import examples


@pytest.fixture()
def todo_doc():
    """A TodoMVC-shaped document."""
    doc = Document()
    body = doc.root
    body.append_child(
        Element(
            "section",
            {"class": "todoapp"},
            children=[
                Element(
                    "header",
                    {"class": "header"},
                    children=[
                        Element("h1", text="todos"),
                        Element(
                            "input",
                            {"class": "new-todo", "placeholder": "What needs to be done?"},
                        ),
                    ],
                ),
                Element(
                    "section",
                    {"class": "main"},
                    children=[
                        Element("input", {"id": "toggle-all", "type": "checkbox", "class": "toggle-all"}),
                        Element(
                            "ul",
                            {"class": "todo-list"},
                            children=[
                                Element(
                                    "li",
                                    {"class": "completed"},
                                    children=[
                                        Element("input", {"type": "checkbox", "class": "toggle"}),
                                        Element("label", text="Meditate"),
                                        Element("button", {"class": "destroy"}),
                                    ],
                                ),
                                Element(
                                    "li",
                                    children=[
                                        Element("input", {"type": "checkbox", "class": "toggle"}),
                                        Element("label", text="Walk"),
                                        Element("button", {"class": "destroy"}),
                                    ],
                                ),
                            ],
                        ),
                    ],
                ),
                Element(
                    "footer",
                    {"class": "footer"},
                    children=[
                        Element(
                            "span",
                            {"class": "todo-count"},
                            children=[Element("strong", text="1"), Element("span", text=" item left")],
                        ),
                        Element(
                            "ul",
                            {"class": "filters"},
                            children=[
                                Element("li", children=[Element("a", {"href": "#/", "class": "selected"}, text="All")]),
                                Element("li", children=[Element("a", {"href": "#/active"}, text="Active")]),
                                Element("li", children=[Element("a", {"href": "#/completed"}, text="Completed")]),
                            ],
                        ),
                    ],
                ),
            ],
        )
    )
    return doc


class TestSimpleSelectors:
    def test_tag(self, todo_doc):
        assert len(todo_doc.query_all("li")) == 5

    def test_universal(self, todo_doc):
        assert len(todo_doc.query_all("*")) > 10

    def test_id(self, todo_doc):
        assert todo_doc.query_one("#toggle-all").tag == "input"

    def test_class(self, todo_doc):
        assert len(todo_doc.query_all(".toggle")) == 2

    def test_compound_tag_class(self, todo_doc):
        assert len(todo_doc.query_all("li.completed")) == 1

    def test_attribute_presence(self, todo_doc):
        assert len(todo_doc.query_all("[placeholder]")) == 1

    def test_attribute_equals(self, todo_doc):
        assert len(todo_doc.query_all('[type="checkbox"]')) == 3
        assert len(todo_doc.query_all("[type=checkbox]")) == 3

    def test_attribute_prefix_suffix_contains(self, todo_doc):
        assert len(todo_doc.query_all('a[href^="#/a"]')) == 1
        assert len(todo_doc.query_all('a[href$="completed"]')) == 1
        assert len(todo_doc.query_all('a[href*="/"]')) == 3


class TestCombinators:
    def test_descendant(self, todo_doc):
        assert len(todo_doc.query_all(".todo-list label")) == 2

    def test_child(self, todo_doc):
        assert len(todo_doc.query_all(".todo-list > li")) == 2
        assert len(todo_doc.query_all(".todoapp > li")) == 0

    def test_adjacent_sibling(self, todo_doc):
        assert [el.text for el in todo_doc.query_all(".toggle + label")] == [
            "Meditate",
            "Walk",
        ]

    def test_general_sibling(self, todo_doc):
        assert len(todo_doc.query_all(".toggle ~ button.destroy")) == 2

    def test_selector_list(self, todo_doc):
        found = todo_doc.query_all("h1, .new-todo")
        assert {el.tag for el in found} == {"h1", "input"}


class TestPseudoClasses:
    def test_checked(self, todo_doc):
        todo_doc.query_all(".toggle")[0].checked = True
        assert len(todo_doc.query_all(".toggle:checked")) == 1

    def test_focus(self, todo_doc):
        box = todo_doc.query_one(".new-todo")
        todo_doc.focus(box)
        assert todo_doc.query_one("input:focus") is box

    def test_visible_and_hidden(self, todo_doc):
        li = todo_doc.query_all(".todo-list li")[0]
        li.set_style("display", "none")
        assert len(todo_doc.query_all(".todo-list li:visible")) == 1
        assert len(todo_doc.query_all(".todo-list li:hidden")) == 1

    def test_first_last_child(self, todo_doc):
        assert todo_doc.query_one(".filters li:first-child a").text == "All"
        assert todo_doc.query_one(".filters li:last-child a").text == "Completed"

    def test_nth_child(self, todo_doc):
        assert todo_doc.query_one(".filters li:nth-child(2) a").text == "Active"

    def test_not(self, todo_doc):
        assert [el.tag for el in todo_doc.query_all(".todo-list li:not(.completed)")]

    def test_not_with_nested_pseudo(self, todo_doc):
        found = todo_doc.query_all(".filters li:not(:first-child) a")
        assert [a.text for a in found] == ["Active", "Completed"]

    def test_enabled_disabled(self, todo_doc):
        button = todo_doc.query_all(".destroy")[0]
        button.set_attribute("disabled", "")
        assert len(todo_doc.query_all(".destroy:disabled")) == 1
        assert len(todo_doc.query_all(".destroy:enabled")) == 1

    def test_empty(self, todo_doc):
        assert todo_doc.query_one("button:empty") is not None


class TestParseErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            "div,,p",
            "> div",
            "div >",
            "div ! p",
            ":bogus",
            ":nth-child(x)",
            ":nth-child",
            ":not()",
            ":not(a b)",
            "p:checked(1)",
            "div p..",
            "a#b#c$",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(SelectorError):
            parse_selector(bad)

    def test_type_selector_must_come_first(self):
        # Valid: whitespace makes this a descendant selector.
        parse_selector(".cls div")
        # Invalid: a universal/type selector glued after a simple selector.
        with pytest.raises(SelectorError):
            parse_selector(".cls*")
        with pytest.raises(SelectorError):
            parse_selector("[type=text]input")


class TestReferenceEquivalence:
    """The engine agrees with a naive reference matcher on random trees
    for single-compound selectors."""

    tags = st.sampled_from(["div", "p", "span", "li"])
    classes = st.lists(st.sampled_from(["a", "b", "c"]), max_size=2, unique=True)

    @st.composite
    @staticmethod
    def trees(draw, depth=3):
        tag = draw(TestReferenceEquivalence.tags)
        cls = " ".join(draw(TestReferenceEquivalence.classes))
        attrs = {"class": cls} if cls else {}
        children = []
        if depth > 0:
            for _ in range(draw(st.integers(0, 3))):
                children.append(draw(TestReferenceEquivalence.trees(depth=depth - 1)))
        return Element(tag, attrs, children=children)

    @given(trees(), tags, st.sampled_from(["a", "b", "c"]))
    @examples(100)
    def test_tag_and_class_queries(self, tree, tag, cls):
        selector = f"{tag}.{cls}"
        expected = [
            el
            for el in tree.iter_elements()
            if el.tag == tag and cls in el.classes
        ]
        assert query_all(tree, selector) == expected

    @given(trees())
    @examples(60)
    def test_descendant_query_is_subset_of_class_query(self, tree):
        outer = query_all(tree, ".a .b")
        for el in outer:
            assert "b" in el.classes
            ancestor_classes = []
            node = el.parent
            while node is not None:
                ancestor_classes.extend(node.classes)
                node = node.parent
            assert "a" in ancestor_classes


class TestQueryHelpers:
    def test_query_one_returns_first(self, todo_doc):
        assert todo_doc.query_one("li").has_class("completed")

    def test_query_one_none_when_missing(self, todo_doc):
        assert todo_doc.query_one(".nope") is None

    def test_matches_accepts_parsed_selector(self, todo_doc):
        parsed = parse_selector("li.completed")
        li = todo_doc.query_one("li")
        assert matches(li, parsed, todo_doc)
