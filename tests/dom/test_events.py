"""Event dispatch: phases, bubbling, default prevention."""

import pytest

from repro.dom import Document, Element, Event


@pytest.fixture()
def doc():
    d = Document()
    outer = Element("div", {"id": "outer"})
    inner = Element("button", {"id": "inner"})
    outer.append_child(inner)
    d.root.append_child(outer)
    return d


def targets(doc):
    return doc.get_element_by_id("outer"), doc.get_element_by_id("inner")


class TestDispatchPhases:
    def test_bubbling_order(self, doc):
        outer, inner = targets(doc)
        order = []
        doc.add_event_listener(inner, "click", lambda e: order.append("inner"))
        doc.add_event_listener(outer, "click", lambda e: order.append("outer"))
        doc.add_event_listener(doc.root, "click", lambda e: order.append("root"))
        doc.dispatch_event(Event("click", target=inner))
        assert order == ["inner", "outer", "root"]

    def test_capture_runs_before_target(self, doc):
        outer, inner = targets(doc)
        order = []
        doc.add_event_listener(outer, "click", lambda e: order.append("capture"), capture=True)
        doc.add_event_listener(inner, "click", lambda e: order.append("target"))
        doc.dispatch_event(Event("click", target=inner))
        assert order == ["capture", "target"]

    def test_stop_propagation(self, doc):
        outer, inner = targets(doc)
        order = []

        def stop(e):
            order.append("inner")
            e.stop_propagation()

        doc.add_event_listener(inner, "click", stop)
        doc.add_event_listener(outer, "click", lambda e: order.append("outer"))
        doc.dispatch_event(Event("click", target=inner))
        assert order == ["inner"]

    def test_focus_does_not_bubble(self, doc):
        outer, inner = targets(doc)
        order = []
        doc.add_event_listener(outer, "focus", lambda e: order.append("outer"))
        doc.add_event_listener(inner, "focus", lambda e: order.append("inner"))
        doc.dispatch_event(Event("focus", target=inner))
        assert order == ["inner"]

    def test_current_target_updates(self, doc):
        outer, inner = targets(doc)
        seen = []
        doc.add_event_listener(outer, "click", lambda e: seen.append(e.current_target))
        doc.dispatch_event(Event("click", target=inner))
        assert seen == [outer]

    def test_dispatch_needs_target(self, doc):
        with pytest.raises(ValueError):
            doc.dispatch_event(Event("click"))


class TestDefaultPrevention:
    def test_dispatch_returns_false_when_prevented(self, doc):
        _, inner = targets(doc)
        doc.add_event_listener(inner, "click", lambda e: e.prevent_default())
        assert doc.dispatch_event(Event("click", target=inner)) is False

    def test_dispatch_returns_true_otherwise(self, doc):
        _, inner = targets(doc)
        assert doc.dispatch_event(Event("click", target=inner)) is True


class TestListenerManagement:
    def test_remove_listener(self, doc):
        _, inner = targets(doc)
        count = []
        handler = lambda e: count.append(1)
        doc.add_event_listener(inner, "click", handler)
        doc.remove_event_listener(inner, "click", handler)
        doc.dispatch_event(Event("click", target=inner))
        assert count == []

    def test_remove_unknown_listener_is_noop(self, doc):
        _, inner = targets(doc)
        doc.remove_event_listener(inner, "click", lambda e: None)

    def test_multiple_listeners_in_order(self, doc):
        _, inner = targets(doc)
        order = []
        doc.add_event_listener(inner, "click", lambda e: order.append(1))
        doc.add_event_listener(inner, "click", lambda e: order.append(2))
        doc.dispatch_event(Event("click", target=inner))
        assert order == [1, 2]


class TestFocusManagement:
    def test_focus_fires_blur_then_focus(self, doc):
        _, inner = targets(doc)
        other = Element("input")
        doc.root.append_child(other)
        order = []
        doc.add_event_listener(inner, "focus", lambda e: order.append("focus-inner"))
        doc.add_event_listener(inner, "blur", lambda e: order.append("blur-inner"))
        doc.add_event_listener(other, "focus", lambda e: order.append("focus-other"))
        doc.focus(inner)
        doc.focus(other)
        assert order == ["focus-inner", "blur-inner", "focus-other"]
        assert doc.active_element is other

    def test_refocus_is_noop(self, doc):
        _, inner = targets(doc)
        order = []
        doc.add_event_listener(inner, "focus", lambda e: order.append("focus"))
        doc.focus(inner)
        doc.focus(inner)
        assert order == ["focus"]

    def test_blur_clears_active_element(self, doc):
        _, inner = targets(doc)
        doc.focus(inner)
        doc.blur()
        assert doc.active_element is None


class TestLocationHash:
    def test_hashchange_event(self, doc):
        seen = []
        doc.add_event_listener(doc.root, "hashchange", lambda e: seen.append(doc.location_hash))
        doc.set_location_hash("/active")
        assert seen == ["/active"]
        assert doc.location_hash == "/active"

    def test_same_hash_no_event(self, doc):
        doc.set_location_hash("/x")
        seen = []
        doc.add_event_listener(doc.root, "hashchange", lambda e: seen.append(1))
        doc.set_location_hash("/x")
        assert seen == []
