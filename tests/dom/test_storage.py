"""LocalStorage semantics."""

from repro.dom import LocalStorage


class TestBasicApi:
    def test_get_missing_is_none(self):
        assert LocalStorage().get_item("x") is None

    def test_set_get(self):
        s = LocalStorage()
        s.set_item("k", "v")
        assert s.get_item("k") == "v"

    def test_values_coerced_to_str(self):
        s = LocalStorage()
        s.set_item("n", 42)
        assert s.get_item("n") == "42"

    def test_remove(self):
        s = LocalStorage()
        s.set_item("k", "v")
        s.remove_item("k")
        assert s.get_item("k") is None
        s.remove_item("k")  # idempotent

    def test_clear_and_len(self):
        s = LocalStorage()
        s.set_item("a", "1")
        s.set_item("b", "2")
        assert len(s) == 2
        s.clear()
        assert len(s) == 0

    def test_contains(self):
        s = LocalStorage()
        s.set_item("a", "1")
        assert "a" in s and "b" not in s

    def test_key_by_index(self):
        s = LocalStorage()
        s.set_item("a", "1")
        assert s.key(0) == "a"
        assert s.key(5) is None


class TestJsonHelpers:
    def test_roundtrip(self):
        s = LocalStorage()
        payload = [{"title": "walk", "completed": False}]
        s.set_json("todos", payload)
        assert s.get_json("todos") == payload

    def test_default_when_missing(self):
        assert LocalStorage().get_json("x", default=[]) == []

    def test_default_on_corrupt_data(self):
        s = LocalStorage()
        s.set_item("todos", "{not json")
        assert s.get_json("todos", default=[]) == []
