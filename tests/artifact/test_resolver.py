"""SpecResolver: the one seam; memoized by content, wire-ready."""

import base64

from repro.artifact import (
    SpecResolver,
    compile_spec,
    content_hash,
    save_artifact,
)
from repro.checker.compiled import CompiledProperty
from repro.specs import spec_path
from repro.specstrom.module import CheckSpec


class TestContentMemo:
    def test_same_path_same_content_is_one_front_end_run(self):
        resolver = SpecResolver()
        first = resolver.load(spec_path("eggtimer.strom"))
        second = resolver.load(spec_path("eggtimer.strom"))
        assert second is first
        assert resolver.stats() == (1, 1)

    def test_artifact_and_source_paths_memoize_separately(self, tmp_path):
        resolver = SpecResolver()
        artifact = str(tmp_path / "egg.qsa")
        save_artifact(compile_spec(spec_path("eggtimer.strom")), artifact)
        from_source = resolver.load(spec_path("eggtimer.strom"))
        from_artifact = resolver.load(artifact)
        assert resolver.stats() == (0, 2)
        assert from_source.source_hash == from_artifact.source_hash
        assert resolver.load(artifact) is from_artifact
        assert resolver.stats() == (1, 2)

    def test_edited_content_under_the_same_path_recompiles(self, tmp_path):
        resolver = SpecResolver()
        spec_file = tmp_path / "egg.strom"
        source = open(spec_path("eggtimer.strom")).read()
        spec_file.write_text(source)
        first = resolver.load(str(spec_file))
        spec_file.write_text(source + "\n// touched\n")
        second = resolver.load(str(spec_file))
        assert second is not first
        assert second.source_hash != first.source_hash
        assert resolver.stats() == (0, 2)

    def test_load_bytes_memoizes_by_source_hash(self):
        from repro.artifact import artifact_bytes

        resolver = SpecResolver()
        bundle = compile_spec(spec_path("eggtimer.strom"))
        data = artifact_bytes(bundle)
        first = resolver.load_bytes(data, source_hash=bundle.source_hash)
        second = resolver.load_bytes(data, source_hash=bundle.source_hash)
        assert second is first
        assert resolver.stats() == (1, 1)


class TestResolve:
    def test_path_resolves_to_check_plus_compiled_property(self):
        resolver = SpecResolver()
        check, compiled = resolver.resolve(
            spec_path("eggtimer.strom"), property="safety"
        )
        assert isinstance(check, CheckSpec) and check.name == "safety"
        assert isinstance(compiled, CompiledProperty)
        assert compiled.spec is check

    def test_bare_check_resolves_without_a_bundle(self):
        resolver = SpecResolver()
        bundle = resolver.load(spec_path("eggtimer.strom"))
        check = bundle.check_named("safety")
        resolved, compiled = resolver.resolve(check)
        assert resolved is check
        assert compiled is None


class TestRemoteFields:
    def test_fields_carry_loadable_artifact_bytes(self):
        resolver = SpecResolver()
        fields = resolver.remote_fields(spec_path("eggtimer.strom"))
        assert set(fields) == {"artifact_b64", "source_hash"}
        with open(spec_path("eggtimer.strom"), "rb") as handle:
            assert fields["source_hash"] == content_hash(handle.read())
        other = SpecResolver()
        bundle = other.load_bytes(
            base64.b64decode(fields["artifact_b64"]),
            source_hash=fields["source_hash"],
        )
        assert set(bundle.properties) == {"safety", "liveness", "timeUp"}

    def test_encoding_is_memoized_per_bundle(self):
        resolver = SpecResolver()
        first = resolver.remote_fields(spec_path("eggtimer.strom"))
        second = resolver.remote_fields(spec_path("eggtimer.strom"))
        assert first == second
        assert len(resolver._encoded) == 1
