"""Verdict identity across spec-resolution paths.

The artifact pipeline's acceptance bar: a campaign checked from a
loaded artifact -- serially, over a fork/thread pool, or on a remote
worker fed artifact bytes -- produces verdicts, counterexamples and
test counts identical to one compiled from source.
"""

import base64

import pytest

from repro.api import CheckSession, SessionConfig
from repro.apps.eggtimer import egg_timer_app
from repro.artifact import artifact_bytes, compile_spec, save_artifact
from repro.checker import RunnerConfig
from repro.specs import spec_path

QUICK = RunnerConfig(tests=4, scheduled_actions=12, demand_allowance=8,
                     seed="artifact-identity", shrink=False)


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("artifact") / "egg.qsa")
    save_artifact(compile_spec(spec_path("eggtimer.strom")), path)
    return path


def _verdicts(result):
    return [r.verdict for r in result.results]


class TestSourceVsArtifact:
    @pytest.mark.parametrize("prop", ["safety", "liveness", "timeUp"])
    def test_serial_verdicts_identical(self, artifact, prop):
        from_source = CheckSession(egg_timer_app()).check(
            spec_path("eggtimer.strom"), property=prop, config=QUICK
        )
        from_artifact = CheckSession(egg_timer_app()).check(
            artifact, property=prop, config=QUICK
        )
        assert _verdicts(from_artifact) == _verdicts(from_source)
        assert from_artifact.passed == from_source.passed
        if from_source.counterexample is not None:
            assert (from_artifact.counterexample.actions
                    == from_source.counterexample.actions)

    def test_check_all_batch_identical(self, artifact):
        cfg = SessionConfig(jobs=2)
        from_source = CheckSession(egg_timer_app()).check_all(
            spec_path("eggtimer.strom"), config=QUICK, session=cfg
        )
        from_artifact = CheckSession(egg_timer_app()).check_all(
            artifact, config=QUICK, session=cfg
        )
        assert [(r.property_name, _verdicts(r)) for r in from_artifact] == [
            (r.property_name, _verdicts(r)) for r in from_source
        ]


class TestWorkerArtifactPath:
    def test_worker_cache_load_from_bytes_matches_source(self, artifact):
        """The remote path in miniature: a _RunnerCache fed artifact
        bytes runs the same test to the same verdict as a local
        source-compiled runner."""
        import random

        from repro.api.engines import _test_seed
        from repro.api.transport.worker import _RunnerCache

        bundle = compile_spec(spec_path("eggtimer.strom"))
        descriptor = {
            "spec": spec_path("eggtimer.strom"),
            "property": "safety",
            "app": "eggtimer",
            "artifact_b64": base64.b64encode(
                artifact_bytes(bundle)
            ).decode("ascii"),
            "source_hash": bundle.source_hash,
            "config": {"tests": 4, "scheduled_actions": 12,
                       "demand_allowance": 8,
                       "seed": "artifact-identity", "shrink": False},
        }
        cache = _RunnerCache()
        runner = cache.runner_for(descriptor)
        remote = [
            runner.run_single_test(
                random.Random(_test_seed("artifact-identity", index))
            ).verdict
            for index in range(4)
        ]
        local = CheckSession(egg_timer_app()).check(
            spec_path("eggtimer.strom"), property="safety", config=QUICK
        )
        assert remote == _verdicts(local)

    def test_rebuilt_campaign_is_one_front_end_run(self):
        """Satellite regression: rebuilding a campaign for the same
        unchanged spec file must not re-run the front end (it used to
        re-elaborate per campaign rebuild)."""
        from repro.api.transport.worker import _RunnerCache

        base = {
            "spec": spec_path("eggtimer.strom"),
            "property": "safety",
            "app": "eggtimer",
            "config": {"tests": 2, "seed": "a"},
        }
        cache = _RunnerCache()
        first = cache.runner_for(base)
        # A rebuilt campaign: same spec content, different run knobs.
        rebuilt = cache.runner_for({**base, "config": {"tests": 9,
                                                       "seed": "b"}})
        assert rebuilt is not first  # distinct runner per campaign
        hits, misses = cache.resolver_stats()
        assert (hits, misses) == (1, 1)  # but one elaboration total

    def test_artifact_bytes_skip_the_front_end_entirely(self):
        import repro.artifact.resolver as resolver_module
        from repro.api.transport.worker import _RunnerCache

        bundle = compile_spec(spec_path("eggtimer.strom"))
        descriptor = {
            "spec": spec_path("eggtimer.strom"),
            "property": "safety",
            "app": "eggtimer",
            "artifact_b64": base64.b64encode(
                artifact_bytes(bundle)
            ).decode("ascii"),
            "source_hash": bundle.source_hash,
            "config": {"tests": 2, "seed": "a"},
        }
        cache = _RunnerCache()
        calls = []
        original = resolver_module.compile_source
        resolver_module.compile_source = (
            lambda *a, **k: calls.append(1) or original(*a, **k)
        )
        try:
            cache.runner_for(descriptor)
        finally:
            resolver_module.compile_source = original
        assert calls == []  # loaded, never elaborated
