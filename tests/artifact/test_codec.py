"""The artifact codec: encode/decode re-interns into the live tables.

The payload encoding is the hash-consed formula DAG in pickle's
children-first (stable topological) stream; the acceptance property is
not mere equality but *identity* -- a decoded formula must be the very
interned node the encoder saw, because every downstream layer (memoized
progression, footprint caches, cohort batching) keys on object
identity.
"""

import pytest
from hypothesis import given, strategies as st

from repro.artifact import load_artifact_bytes
from repro.artifact.codec import decode, encode
from repro.artifact.errors import ArtifactEncodeError
from repro.artifact import compile_spec, artifact_bytes
from repro.quickltl import (
    Always,
    And,
    Atom,
    BOTTOM,
    Eventually,
    Not,
    NextReq,
    NextStrong,
    NextWeak,
    Or,
    Release,
    TOP,
    Until,
    atom,
)
from repro.specs import spec_path

from tests.strategies import examples


# Module-level predicates pickle by reference; `atom("p")`'s default
# predicate is a local closure and deliberately does not.
def _reads_p(state):
    return bool(state.get("p", False))


def _reads_q(state):
    return bool(state.get("q", False))


_ATOMS = [Atom("p", _reads_p), Atom("q", _reads_q)]


@st.composite
def picklable_formulas(draw, max_depth: int = 4, max_subscript: int = 3):
    """Random structural formulas whose atoms pickle by reference."""
    if max_depth <= 0:
        return draw(st.sampled_from([TOP, BOTTOM] + _ATOMS))
    sub = lambda: picklable_formulas(
        max_depth=max_depth - 1, max_subscript=max_subscript
    )
    n = draw(st.integers(min_value=0, max_value=max_subscript))
    choice = draw(st.integers(min_value=0, max_value=10))
    if choice == 0:
        return draw(st.sampled_from([TOP, BOTTOM] + _ATOMS))
    if choice == 1:
        return Not(draw(sub()))
    if choice == 2:
        return And(draw(sub()), draw(sub()))
    if choice == 3:
        return Or(draw(sub()), draw(sub()))
    if choice == 4:
        return NextReq(draw(sub()))
    if choice == 5:
        return NextWeak(draw(sub()))
    if choice == 6:
        return NextStrong(draw(sub()))
    if choice == 7:
        return Always(n, draw(sub()))
    if choice == 8:
        return Eventually(n, draw(sub()))
    if choice == 9:
        return Until(n, draw(sub()), draw(sub()))
    return Release(n, draw(sub()), draw(sub()))


class TestFormulaRoundTrip:
    @given(formula=picklable_formulas())
    @examples(200)
    def test_decode_is_the_identical_interned_object(self, formula):
        assert decode(encode(formula)) is formula

    def test_shared_subterms_stay_shared(self):
        shared = And(_ATOMS[0], _ATOMS[1])
        formula = Or(Always(2, shared), Eventually(3, shared))
        restored = decode(encode(formula))
        assert restored is formula
        assert restored.left.body is restored.right.body

    def test_local_closure_atom_is_rejected_with_a_typed_error(self):
        with pytest.raises(ArtifactEncodeError):
            encode(atom("p"))  # default predicate is a local closure


class TestSpecModuleRoundTrip:
    def test_eggtimer_module_round_trips_through_the_codec(self):
        bundle = compile_spec(spec_path("eggtimer.strom"))
        restored = decode(encode(bundle.module))
        assert [c.name for c in restored.checks] == [
            c.name for c in bundle.module.checks
        ]
        for original, loaded in zip(bundle.module.checks, restored.checks):
            # Defers intern by closure identity, so the loaded formula
            # is a *new* interned node -- but structurally it must
            # progress identically, which the campaign-identity tests
            # assert end to end.  Here: same spine, same footprints.
            assert type(loaded.formula) is type(original.formula)
            assert loaded.formula.name == original.formula.name
            assert (loaded.formula.footprint()
                    == original.formula.footprint())

    def test_rebuilt_defers_carry_fresh_provenance(self):
        bundle = compile_spec(spec_path("eggtimer.strom"))
        loaded = load_artifact_bytes(artifact_bytes(bundle))
        for check in loaded.module.checks:
            assert check.formula.provenance is not None

    def test_structural_formulas_intern_across_the_wire_twice(self):
        formula = Until(2, _ATOMS[0], Not(_ATOMS[1]))
        once = decode(encode(formula))
        twice = decode(encode(once))
        assert once is formula and twice is formula
