"""The artifact pipeline: compile -> save -> inspect -> load, and every
way a bad artifact must be rejected with a *typed* error."""

import os

import pytest

from repro.artifact import (
    ARTIFACT_VERSION,
    ArtifactCorruptError,
    ArtifactFormatError,
    ArtifactStaleError,
    ArtifactVersionError,
    CompiledSpec,
    artifact_bytes,
    compile_spec,
    content_hash,
    default_artifact_path,
    inspect_artifact,
    load_artifact,
    load_artifact_bytes,
    save_artifact,
)
from repro.artifact.format import MAGIC, pack, read_header
from repro.specs import spec_path


@pytest.fixture(scope="module")
def bundle():
    return compile_spec(spec_path("eggtimer.strom"))


@pytest.fixture()
def saved(bundle, tmp_path):
    path = str(tmp_path / "egg.qsa")
    save_artifact(bundle, path)
    return path


class TestCompile:
    def test_compile_spec_builds_every_check(self, bundle):
        assert isinstance(bundle, CompiledSpec)
        assert [c.name for c in bundle.module.checks] == [
            "safety", "liveness", "timeUp",
        ]
        assert set(bundle.properties) == {"safety", "liveness", "timeUp"}

    def test_properties_share_one_progression_cache(self, bundle):
        caches = {
            id(prop.caches) for prop in bundle.properties.values()
        }
        assert len(caches) == 1
        assert next(iter(caches)) == id(bundle.caches)

    def test_warm_preseeds_the_caches(self):
        fresh = compile_spec(spec_path("eggtimer.strom"))
        assert len(fresh.caches) > 0  # compile_spec warms

    def test_source_hash_is_the_content_hash(self, bundle):
        with open(spec_path("eggtimer.strom"), "rb") as handle:
            assert bundle.source_hash == content_hash(handle.read())


class TestSaveLoad:
    def test_round_trip_preserves_manifest_and_caches(self, bundle, saved):
        loaded = load_artifact(saved)
        assert loaded.source_hash == bundle.source_hash
        assert set(loaded.properties) == set(bundle.properties)
        assert len(loaded.caches) > 0  # pre-seeded, not rebuilt

    def test_default_artifact_path_is_source_with_qsa(self):
        assert default_artifact_path("/x/spec.strom") == "/x/spec.qsa"

    def test_inspect_reads_the_header_without_the_payload(self, saved):
        header = inspect_artifact(saved)
        assert header["artifact_version"] == ARTIFACT_VERSION
        assert {c["name"] for c in header["checks"]} == {
            "safety", "liveness", "timeUp",
        }


class TestTypedRejection:
    def test_garbage_bytes_are_a_format_error(self):
        with pytest.raises(ArtifactFormatError):
            load_artifact_bytes(b"not an artifact at all")

    def test_truncated_container_is_a_format_error(self, bundle):
        data = artifact_bytes(bundle)
        with pytest.raises(ArtifactFormatError):
            read_header(data[:6])

    def test_version_skew_is_a_version_error(self, bundle):
        data = bytearray(artifact_bytes(bundle))
        data[4:8] = (99).to_bytes(4, "big")
        with pytest.raises(ArtifactVersionError):
            load_artifact_bytes(bytes(data))

    def test_flipped_payload_byte_is_a_corrupt_error(self, bundle):
        data = bytearray(artifact_bytes(bundle))
        data[-1] ^= 0xFF
        with pytest.raises(ArtifactCorruptError):
            load_artifact_bytes(bytes(data))

    def test_checksummed_header_rejects_payload_swap(self, bundle):
        _version, header, offset = read_header(artifact_bytes(bundle))
        forged = pack(
            {k: v for k, v in header.items()
             if k not in ("payload_sha256", "payload_len")},
            b"\x00" * 32,
            magic=MAGIC,
        )
        # Forged payload checksums consistently, but unpickling trash
        # must still surface as corruption, not a random exception.
        with pytest.raises(ArtifactCorruptError):
            load_artifact_bytes(forged, check_source=False)


class TestStaleness:
    def _edited_copy(self, tmp_path):
        source = open(spec_path("eggtimer.strom")).read()
        spec_file = tmp_path / "egg.strom"
        spec_file.write_text(source)
        bundle = compile_spec(str(spec_file))
        path = str(tmp_path / "egg.qsa")
        save_artifact(bundle, path)
        spec_file.write_text(source + "\n// edited\n")
        return path, bundle

    def test_stale_artifact_recompiles_from_source_by_default(
        self, tmp_path
    ):
        path, stale = self._edited_copy(tmp_path)
        loaded = load_artifact(path)
        assert loaded.source_hash != stale.source_hash

    def test_strict_mode_raises_instead(self, tmp_path):
        path, _ = self._edited_copy(tmp_path)
        with pytest.raises(ArtifactStaleError):
            load_artifact(path, strict=True)

    def test_fresh_artifact_loads_even_in_strict_mode(self, saved):
        loaded = load_artifact(saved, strict=True)
        assert set(loaded.properties) == {"safety", "liveness", "timeUp"}

    def test_missing_source_is_not_stale(self, tmp_path):
        # A host that only received the artifact (no .strom on disk)
        # must load it even in strict mode: absence is not staleness.
        spec_file = tmp_path / "gone.strom"
        spec_file.write_text(open(spec_path("eggtimer.strom")).read())
        bundle = compile_spec(str(spec_file))
        path = str(tmp_path / "gone.qsa")
        save_artifact(bundle, path)
        os.unlink(str(spec_file))
        loaded = load_artifact(path, strict=True)
        assert loaded.source_hash == bundle.source_hash
