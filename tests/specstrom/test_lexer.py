"""Specstrom lexer."""

import pytest

from repro.specstrom import SpecSyntaxError, tokenize


def kinds_and_values(source):
    return [(t.kind, t.value) for t in tokenize(source) if not t.is_eof]


class TestIdentifiers:
    def test_plain(self):
        assert kinds_and_values("menuEnabled") == [("ident", "menuEnabled")]

    def test_action_suffix(self):
        assert kinds_and_values("start!") == [("ident", "start!")]

    def test_event_suffix(self):
        assert kinds_and_values("tick?") == [("ident", "tick?")]

    def test_bang_not_confused_with_neq(self):
        assert kinds_and_values("a != b") == [
            ("ident", "a"),
            ("punct", "!="),
            ("ident", "b"),
        ]

    def test_keywords(self):
        assert kinds_and_values("let action check when") == [
            ("keyword", "let"),
            ("keyword", "action"),
            ("keyword", "check"),
            ("keyword", "when"),
        ]

    def test_keyword_prefix_is_ident(self):
        assert kinds_and_values("letter") == [("ident", "letter")]


class TestLiterals:
    def test_integers(self):
        assert kinds_and_values("42") == [("number", 42)]

    def test_floats(self):
        assert kinds_and_values("3.25") == [("number", 3.25)]

    def test_int_dot_member_not_float(self):
        # `1.x` should lex as number 1, '.', ident x (member access).
        assert kinds_and_values("1.x") == [
            ("number", 1),
            ("punct", "."),
            ("ident", "x"),
        ]

    def test_strings(self):
        assert kinds_and_values('"hello"') == [("string", "hello")]

    def test_string_escapes(self):
        assert kinds_and_values(r'"a\n\"b\""') == [("string", 'a\n"b"')]

    def test_selectors(self):
        assert kinds_and_values("`#toggle .on`") == [("selector", "#toggle .on")]

    def test_unterminated_string(self):
        with pytest.raises(SpecSyntaxError):
            tokenize('"oops')

    def test_unterminated_selector(self):
        with pytest.raises(SpecSyntaxError):
            tokenize("`#a")

    def test_newline_in_string_rejected(self):
        with pytest.raises(SpecSyntaxError):
            tokenize('"a\nb"')


class TestPunctuation:
    def test_longest_match(self):
        assert kinds_and_values("==> == =") == [
            ("punct", "==>"),
            ("punct", "=="),
            ("punct", "="),
        ]

    def test_logical_operators(self):
        assert kinds_and_values("&& || !") == [
            ("punct", "&&"),
            ("punct", "||"),
            ("punct", "!"),
        ]

    def test_tilde(self):
        assert kinds_and_values("~x") == [("punct", "~"), ("ident", "x")]

    def test_unknown_character(self):
        with pytest.raises(SpecSyntaxError):
            tokenize("a @ b")


class TestCommentsAndLayout:
    def test_line_comments_skipped(self):
        assert kinds_and_values("a // comment\nb") == [
            ("ident", "a"),
            ("ident", "b"),
        ]

    def test_positions(self):
        tokens = tokenize("let x =\n  5;")
        let_token = tokens[0]
        five = [t for t in tokens if t.kind == "number"][0]
        assert (let_token.line, let_token.column) == (1, 1)
        assert five.line == 2

    def test_eof_token_present(self):
        assert tokenize("")[-1].is_eof
