"""Static dependency analysis (paper, Section 3.3)."""

from repro.specstrom import (
    load_module,
    module_definition_table,
    parse_expression,
    parse_module,
    selector_dependencies,
)


def deps_of(source_module, *roots):
    module = parse_module(source_module)
    table = module_definition_table(module)
    exprs = [parse_expression(r) for r in roots]
    return selector_dependencies(exprs, table)


class TestDirectDependencies:
    def test_selector_member(self):
        assert deps_of("", "`#toggle`.text") == {"#toggle"}

    def test_multiple_selectors(self):
        assert deps_of("", "`#a`.text == `#b`.text") == {"#a", "#b"}

    def test_indirect_dependency_in_condition(self):
        """The paper's example: ``if `#toggle`.enabled {0} else {1}``
        depends on #toggle even though no branch queries it."""
        assert deps_of("", "if `#toggle`.enabled { 0 } else { 1 }") == {"#toggle"}

    def test_builtin_call_argument(self):
        assert deps_of("", "count(`.items li`)") == {".items li"}


class TestTransitiveDependencies:
    MODULE = """
    let ~stopped = `#toggle`.text == "start";
    let ~time = parseInt(`#remaining`.text);
    let ~both = stopped && time == 0;
    let helper(x) = x == `#aux`.text;
    """

    def test_through_lazy_lets(self):
        assert deps_of(self.MODULE, "both") == {"#toggle", "#remaining"}

    def test_through_function_bodies(self):
        assert deps_of(self.MODULE, 'helper("x")') == {"#aux"}

    def test_unreferenced_definitions_excluded(self):
        assert deps_of(self.MODULE, "stopped") == {"#toggle"}

    def test_shared_definitions_visited_once(self):
        assert deps_of(self.MODULE, "both && stopped") == {"#toggle", "#remaining"}

    def test_local_shadowing_respected(self):
        module = """
        let ~stopped = `#toggle`.text == "start";
        """
        # Local binding shadows the top-level name; its selector is the
        # one that counts.
        deps = deps_of(module, "{ let stopped = `#other`.text; stopped }")
        assert deps == {"#other"}


class TestCheckSpecDependencies:
    def test_check_gathers_property_and_action_selectors(self):
        module = load_module(
            """
            let ~ok = `#status`.text == "fine";
            action poke! = click!(`#button`) when ok;
            check always{0} ok;
            """
        )
        deps = module.checks[0].dependencies
        assert deps == frozenset({"#status", "#button"})

    def test_with_restricted_actions_narrow_dependencies(self):
        module = load_module(
            """
            let ~ok = `#status`.text == "fine";
            action a! = click!(`#a`);
            action b! = click!(`#b`);
            check always{0} ok with a!;
            """
        )
        deps = module.checks[0].dependencies
        assert "#a" in deps
        assert "#b" not in deps

    def test_guard_selectors_included(self):
        module = load_module(
            """
            let ~guardish = `#gate`.text == "open";
            action go! = click!(`#target`) when guardish;
            check always{0} true with go!;
            """
        )
        assert module.checks[0].dependencies == frozenset({"#gate", "#target"})
