"""Static dependency analysis (paper, Section 3.3)."""

from repro.specstrom import (
    load_module,
    module_definition_table,
    parse_expression,
    parse_module,
    selector_dependencies,
)


def deps_of(source_module, *roots):
    module = parse_module(source_module)
    table = module_definition_table(module)
    exprs = [parse_expression(r) for r in roots]
    return selector_dependencies(exprs, table)


class TestDirectDependencies:
    def test_selector_member(self):
        assert deps_of("", "`#toggle`.text") == {"#toggle"}

    def test_multiple_selectors(self):
        assert deps_of("", "`#a`.text == `#b`.text") == {"#a", "#b"}

    def test_indirect_dependency_in_condition(self):
        """The paper's example: ``if `#toggle`.enabled {0} else {1}``
        depends on #toggle even though no branch queries it."""
        assert deps_of("", "if `#toggle`.enabled { 0 } else { 1 }") == {"#toggle"}

    def test_builtin_call_argument(self):
        assert deps_of("", "count(`.items li`)") == {".items li"}


class TestTransitiveDependencies:
    MODULE = """
    let ~stopped = `#toggle`.text == "start";
    let ~time = parseInt(`#remaining`.text);
    let ~both = stopped && time == 0;
    let helper(x) = x == `#aux`.text;
    """

    def test_through_lazy_lets(self):
        assert deps_of(self.MODULE, "both") == {"#toggle", "#remaining"}

    def test_through_function_bodies(self):
        assert deps_of(self.MODULE, 'helper("x")') == {"#aux"}

    def test_unreferenced_definitions_excluded(self):
        assert deps_of(self.MODULE, "stopped") == {"#toggle"}

    def test_shared_definitions_visited_once(self):
        assert deps_of(self.MODULE, "both && stopped") == {"#toggle", "#remaining"}

    def test_local_shadowing_respected(self):
        module = """
        let ~stopped = `#toggle`.text == "start";
        """
        # Local binding shadows the top-level name; its selector is the
        # one that counts.
        deps = deps_of(module, "{ let stopped = `#other`.text; stopped }")
        assert deps == {"#other"}


class TestCheckSpecDependencies:
    def test_check_gathers_property_and_action_selectors(self):
        module = load_module(
            """
            let ~ok = `#status`.text == "fine";
            action poke! = click!(`#button`) when ok;
            check always{0} ok;
            """
        )
        deps = module.checks[0].dependencies
        assert deps == frozenset({"#status", "#button"})

    def test_with_restricted_actions_narrow_dependencies(self):
        module = load_module(
            """
            let ~ok = `#status`.text == "fine";
            action a! = click!(`#a`);
            action b! = click!(`#b`);
            check always{0} ok with a!;
            """
        )
        deps = module.checks[0].dependencies
        assert "#a" in deps
        assert "#b" not in deps

    def test_guard_selectors_included(self):
        module = load_module(
            """
            let ~guardish = `#gate`.text == "open";
            action go! = click!(`#target`) when guardish;
            check always{0} true with go!;
            """
        )
        assert module.checks[0].dependencies == frozenset({"#gate", "#target"})


class TestExprSelectorFootprint:
    def _footprint(self, module_source, expr_source):
        from repro.specstrom.analysis import expr_selector_footprint
        from repro.specstrom.module import load_module

        module = load_module(module_source)
        expr = parse_expression(expr_source)
        return expr_selector_footprint(expr, module.env)

    def test_direct_selector_literals(self):
        assert self._footprint("", '`#a`.text == `#b`.text') == {"#a", "#b"}

    def test_resolves_evaluated_selector_bindings(self):
        # A strict top-level let binds an evaluated SelectorValue; the
        # footprint walk chases the *value*, not just the source text.
        module = 'let s = `#bound`;'
        assert self._footprint(module, "s.text") == {"#bound"}

    def test_resolves_lazy_bindings_and_functions(self):
        module = """
        let ~stopped = `#toggle`.text == "start";
        let helper(x) = x == `#aux`.text;
        """
        assert self._footprint(module, 'stopped && helper("v")') == {
            "#toggle", "#aux",
        }

    def test_locals_shadow_the_environment(self):
        module = 'let s = `#outer`;'
        # The block rebinds s; only the block's own selector is read.
        assert self._footprint(
            module, "{ let s = `#inner`; s.text }"
        ) == {"#inner"}

    def test_happened_reads_no_selectors(self):
        assert self._footprint("", "happened") == frozenset()


class TestLiveQueries:
    def _formula(self, module_source):
        from repro.specstrom.module import load_module

        return load_module(module_source).checks[0].formula

    def test_whole_property_is_live_before_any_state(self):
        from repro.specstrom.analysis import live_queries

        formula = self._formula(
            'check (`#a`.text == "x" && always{3} (`#b`.text == "y"));'
        )
        assert live_queries(formula) == {"#a", "#b"}

    def test_residual_drops_the_resolved_conjunct(self):
        from repro.quickltl import FormulaChecker
        from repro.specstrom.analysis import live_queries
        from repro.specstrom.state import ElementSnapshot, StateSnapshot

        formula = self._formula(
            'check (`#a`.text == "x" && always{3} (`#b`.text == "y"));'
        )
        state = StateSnapshot(
            queries={
                "#a": (ElementSnapshot(tag="span", text="x"),),
                "#b": (ElementSnapshot(tag="span", text="y"),),
            },
            happened=("loaded?",),
        )
        checker = FormulaChecker(formula)
        checker.observe(state)
        # `#a` was consumed at the first state: only the always-body
        # can still read anything.
        assert live_queries(checker.residual) == {"#b"}

    def test_hand_built_atoms_are_unknown(self):
        from repro.quickltl import And, atom
        from repro.specstrom.analysis import live_queries

        assert live_queries(atom("p")) is None
        # Unknown is absorbing through connectives.
        formula = self._formula('check always{2} (`#b`.text == "y");')
        assert live_queries(And(formula, atom("p"))) is None

    def test_untagged_defer_is_unknown(self):
        from repro.quickltl import TOP
        from repro.quickltl.syntax import Defer
        from repro.specstrom.analysis import live_queries

        assert live_queries(Defer("d", lambda state: TOP)) is None

    def test_constants_read_nothing(self):
        from repro.quickltl import BOTTOM, TOP
        from repro.specstrom.analysis import live_queries

        assert live_queries(TOP) == frozenset()
        assert live_queries(BOTTOM) == frozenset()
