"""Built-in functions: state queries, helpers, action primitives."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.specstrom import PrimitiveAction, PrimitiveEvent, SpecEvalError

from .helpers import element, run_expr, snapshot
from tests.strategies import examples


STATE = snapshot(
    {
        ".items li": [
            element(tag="li", text="alpha", classes=["completed"]),
            element(tag="li", text="beta", visible=False),
            element(tag="li", text="gamma"),
        ],
        "#missing": [],
    }
)


class TestStateQueryBuiltins:
    def test_elements_and_count(self):
        assert run_expr("count(`.items li`)", state=STATE) == 3
        assert run_expr("length(elements(`.items li`))", state=STATE) == 3

    def test_visible_variants(self):
        assert run_expr("visibleCount(`.items li`)", state=STATE) == 2
        assert run_expr("visibleTexts(`.items li`)", state=STATE) == ["alpha", "gamma"]

    def test_present_and_visible(self):
        assert run_expr("present(`.items li`)", state=STATE) is True
        assert run_expr("present(`#missing`)", state=STATE) is False
        assert run_expr("visible(`.items li`)", state=STATE) is True

    def test_texts_and_props(self):
        assert run_expr("texts(`.items li`)", state=STATE) == ["alpha", "beta", "gamma"]
        assert run_expr('props(`.items li`, "visible")', state=STATE) == [
            True, False, True,
        ]

    def test_attribute(self):
        state = snapshot({"#x": [element(attributes={"data-k": "v"})]})
        assert run_expr('attribute(first(elements(`#x`)), "data-k")', state=state) == "v"
        assert run_expr('attribute(null, "k")', state=state) is None

    def test_count_of_list_and_string(self):
        assert run_expr("count([1,2,3])") == 3
        assert run_expr('count("abcd")') == 4


class TestParsing:
    @pytest.mark.parametrize(
        "source, expected",
        [
            ('parseInt("42")', 42),
            ('parseInt(" 42 ")', 42),
            ('parseInt("-7")', -7),
            ('parseInt("42px")', 42),
            ('parseInt("x42")', None),
            ('parseInt("")', None),
            ("parseInt(null)", None),
            ("parseInt(3.9)", 3),
            ('parseFloat("2.5")', 2.5),
            ('parseFloat("nope")', None),
        ],
    )
    def test_parse_functions(self, source, expected):
        assert run_expr(source) == expected


class TestStringHelpers:
    def test_trim(self):
        assert run_expr('trim("  x ")') == "x"
        assert run_expr("trim(null)") is None

    def test_predicates(self):
        assert run_expr('startsWith("abc", "ab")') is True
        assert run_expr('endsWith("abc", "bc")') is True
        assert run_expr('contains("abc", "b")') is True

    def test_join_split_substring(self):
        assert run_expr('join(["a", "b"], "-")') == "a-b"
        assert run_expr('split("a-b", "-")') == ["a", "b"]
        assert run_expr('substring("hello", 1, 3)') == "el"

    def test_to_string(self):
        assert run_expr("toString(42)") == "42"
        assert run_expr("toString(2.0)") == "2"
        assert run_expr("toString(true)") == "true"
        assert run_expr("toString(null)") == "null"


class TestListHelpers:
    def test_access(self):
        assert run_expr("first([1,2])") == 1
        assert run_expr("last([1,2])") == 2
        assert run_expr("first([])") is None
        assert run_expr("nth([1,2,3], 1)") == 2
        assert run_expr("nth([1], 9)") is None

    def test_structure(self):
        assert run_expr("isEmpty([])") is True
        assert run_expr("range(3)") == [0, 1, 2]
        assert run_expr("indexOf([5,6], 6)") == 1
        assert run_expr("indexOf([5,6], 9)") == -1
        assert run_expr("zip([1,2],[3,4])") == [[1, 3], [2, 4]]
        assert run_expr("append([1], 2)") == [1, 2]
        assert run_expr("removeAt([1,2,3], 1)") == [1, 3]
        assert run_expr("setAt([1,2,3], 1, 9)") == [1, 9, 3]

    def test_is_subsequence(self):
        assert run_expr("isSubsequence([1,3], [1,2,3])") is True
        assert run_expr("isSubsequence([3,1], [1,2,3])") is False
        assert run_expr("isSubsequence([], [1])") is True
        assert run_expr("isSubsequence([1], [])") is False

    @given(st.lists(st.integers(0, 5), max_size=8),
           st.lists(st.booleans(), max_size=8))
    @examples(100)
    def test_subsequence_by_deletion_property(self, items, keep_flags):
        flags = (keep_flags + [True] * len(items))[: len(items)]
        kept = [x for x, keep in zip(items, flags) if keep]
        from repro.specstrom.builtins import _bi_is_subsequence
        from repro.specstrom.eval import EvalContext

        assert _bi_is_subsequence(EvalContext(), kept, items) is True


class TestHigherOrder:
    SETUP = "let isBig(x) = x > 2; let inc(x) = x + 1;"

    def run(self, expr):
        from repro.specstrom import load_module

        module = load_module(f"{self.SETUP} let result = {expr};")
        return module.env.lookup("result")

    def test_map_filter(self):
        assert self.run("map(inc, [1,2])") == [2, 3]
        assert self.run("filter(isBig, [1,3,5])") == [3, 5]

    def test_all_any(self):
        assert self.run("all(isBig, [3,4])") is True
        assert self.run("all(isBig, [1,4])") is False
        assert self.run("any(isBig, [1,4])") is True

    def test_find_index(self):
        assert self.run("findIndex(isBig, [1,2,3,4])") == 2
        assert self.run("findIndex(isBig, [1,2])") == -1


class TestNumeric:
    def test_abs_min_max(self):
        assert run_expr("abs(0 - 5)") == 5
        assert run_expr("min(2, 3)") == 2
        assert run_expr("max(2, 3)") == 3


class TestRandomness:
    def test_random_text_requires_rng(self):
        with pytest.raises(SpecEvalError, match="RNG"):
            run_expr("randomText()")

    def test_random_text_distribution(self):
        rng = random.Random(7)
        texts = [run_expr("randomText()", rng=rng) for _ in range(300)]
        assert any(t == "" for t in texts)
        assert any(t and t.strip() == "" for t in texts)  # whitespace-only
        assert any(t.strip() for t in texts)

    def test_random_int(self):
        rng = random.Random(1)
        value = run_expr("randomInt(3, 5)", rng=rng)
        assert 3 <= value <= 5


class TestActionPrimitives:
    def test_click_builds_primitive(self):
        value = run_expr("click!(`#go`)")
        assert value == PrimitiveAction("click", "#go")

    def test_input_with_text(self):
        value = run_expr('input!(`#f`, "hi")')
        assert value == PrimitiveAction("input", "#f", ("hi",))

    def test_changed_builds_event(self):
        value = run_expr("changed?(`#label`)")
        assert value == PrimitiveEvent("changed", "#label")

    def test_noop_and_reload_are_values(self):
        assert run_expr("noop!") == PrimitiveAction("noop")
        assert run_expr("reload!") == PrimitiveAction("reload")

    def test_ccs_primitive(self):
        assert run_expr('ccs!("coin")') == PrimitiveAction("ccs", "coin")

    def test_selector_argument_enforced(self):
        with pytest.raises(SpecEvalError):
            run_expr('click!("not-a-selector")')
