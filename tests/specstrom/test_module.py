"""Module elaboration: lets, actions, checks, and error cases."""

import pytest

from repro.quickltl import FormulaChecker, Verdict
from repro.specstrom import (
    ActionValue,
    SpecEvalError,
    StateQueryOutsideStateError,
    load_module,
)

from .helpers import element, snapshot

EGG_TIMER = """
let ~stopped = `#toggle`.text == "start";
let ~started = `#toggle`.text == "stop";
let ~time = parseInt(`#remaining`.text);

action start! = click!(`#toggle`) when stopped;
action stop!  = click!(`#toggle`) when started;
action wait!  = noop! timeout 1000 when started;
action tick?  = changed?(`#remaining`);

let ~ticking {
  let old = time;
  started && next (tick? in happened
                   && time == old - 1
                   && if time == 0 { stopped } else { started })
};

let ~waiting = started && next (wait! in happened && started);
let ~starting = stopped && next (start! in happened
                                 && if time == 0 { stopped } else { started });
let ~stopping = started && next (stop! in happened && stopped);

let ~safety =
  loaded? in happened && time == 180
  && always{400} (starting || stopping || waiting || ticking);

let ~liveness = always{400} (start! in happened ==> eventually{360} stopped);
let ~timeUp   = always{400} (start! in happened ==> eventually{360} (time == 0));

check safety, liveness;
check timeUp with start!, wait!, tick?;
"""


@pytest.fixture(scope="module")
def egg_timer():
    return load_module(EGG_TIMER)


def timer_state(button, remaining, happened, version=0):
    return snapshot(
        {
            "#toggle": [element(tag="button", text=button)],
            "#remaining": [element(tag="span", text=str(remaining))],
        },
        happened=happened,
        version=version,
    )


class TestElaboration:
    def test_checks_are_split_per_property(self, egg_timer):
        assert [c.name for c in egg_timer.checks] == ["safety", "liveness", "timeUp"]

    def test_actions_and_events_separated(self, egg_timer):
        assert sorted(a.name for a in egg_timer.user_actions) == [
            "start!",
            "stop!",
            "wait!",
        ]
        assert [e.name for e in egg_timer.events] == ["tick?"]

    def test_with_clause_restricts_actions(self, egg_timer):
        time_up = egg_timer.check_named("timeUp")
        assert sorted(a.name for a in time_up.actions) == ["start!", "wait!"]
        assert [e.name for e in time_up.events] == ["tick?"]

    def test_default_check_uses_all_actions(self, egg_timer):
        safety = egg_timer.check_named("safety")
        assert sorted(a.name for a in safety.actions) == ["start!", "stop!", "wait!"]

    def test_timeout_captured(self, egg_timer):
        assert egg_timer.actions["wait!"].timeout_ms == 1000.0
        assert egg_timer.actions["start!"].timeout_ms is None

    def test_dependencies(self, egg_timer):
        assert egg_timer.checks[0].dependencies == frozenset(
            {"#toggle", "#remaining"}
        )

    def test_action_values_bound_in_env(self, egg_timer):
        assert isinstance(egg_timer.env.lookup("start!"), ActionValue)

    def test_check_named_missing(self, egg_timer):
        with pytest.raises(KeyError):
            egg_timer.check_named("nope")


class TestSafetyPropertyBehaviour:
    def run_safety(self, egg_timer, trace):
        checker = FormulaChecker(egg_timer.check_named("safety").formula)
        verdict = Verdict.DEMAND
        for state in trace:
            verdict = checker.observe(state)
            if verdict.is_definitive:
                break
        return verdict, checker

    def test_valid_run_keeps_demanding_then_forces_true(self, egg_timer):
        trace = [
            timer_state("start", 180, ["loaded?"], 1),
            timer_state("stop", 180, ["start!"], 2),
            timer_state("stop", 179, ["tick?"], 3),
            timer_state("start", 179, ["stop!"], 4),
        ]
        verdict, checker = self.run_safety(egg_timer, trace)
        assert verdict is Verdict.DEMAND  # transition obligations pending
        assert checker.force() is Verdict.PROBABLY_TRUE

    def test_wrong_initial_time_fails(self, egg_timer):
        trace = [timer_state("start", 120, ["loaded?"], 1)]
        verdict, _ = self.run_safety(egg_timer, trace)
        assert verdict is Verdict.DEFINITELY_FALSE

    def test_time_jump_fails(self, egg_timer):
        trace = [
            timer_state("start", 180, ["loaded?"], 1),
            timer_state("stop", 180, ["start!"], 2),
            timer_state("stop", 150, ["tick?"], 3),
        ]
        verdict, _ = self.run_safety(egg_timer, trace)
        assert verdict is Verdict.DEFINITELY_FALSE

    def test_tick_without_started_fails(self, egg_timer):
        trace = [
            timer_state("start", 180, ["loaded?"], 1),
            timer_state("start", 179, ["tick?"], 2),
        ]
        verdict, _ = self.run_safety(egg_timer, trace)
        assert verdict is Verdict.DEFINITELY_FALSE


class TestLivenessPropertyBehaviour:
    def test_time_up_witnessed(self, egg_timer):
        time_up = egg_timer.check_named("timeUp")
        checker = FormulaChecker(time_up.formula)
        checker.observe(timer_state("start", 2, ["loaded?"], 1))
        checker.observe(timer_state("stop", 2, ["start!"], 2))
        checker.observe(timer_state("stop", 1, ["tick?"], 3))
        verdict = checker.observe(timer_state("start", 0, ["tick?"], 4))
        # The eventually obligation is fulfilled; remaining demand comes
        # only from the enclosing always's subscript countdown.
        assert verdict is not Verdict.DEFINITELY_FALSE
        assert checker.force() is Verdict.PROBABLY_TRUE


class TestElaborationErrors:
    def test_strict_state_query_rejected_at_load(self):
        with pytest.raises(StateQueryOutsideStateError):
            load_module('let broken = `#x`.text == "a";')

    def test_non_numeric_timeout_rejected(self):
        with pytest.raises(SpecEvalError, match="timeout"):
            load_module('action a! = noop! timeout "soon";')

    def test_default_subscript_flows_into_formulas(self):
        from repro.quickltl import Always

        module = load_module(
            "let ~ok = true; check always ok;", default_subscript=123
        )
        # Force the deferred property with a dummy state.

        state = snapshot({})
        formula = module.checks[0].formula
        forced = formula.force(state)
        assert isinstance(forced, Always)
        assert forced.n == 123
