"""Temporal evaluation: formula building, staging, and the evovae example."""

import pytest

from repro.quickltl import FormulaChecker, Verdict
from repro.specstrom import (
    EvalContext,
    FormulaValue,
    SpecEvalError,
    evaluate,
    load_module,
    to_formula,
)
from repro.specstrom.ast_nodes import Var

from .helpers import element, run_expr, snapshot


def states(*texts):
    return [snapshot({"#x": [element(text=t)]}, version=i) for i, t in enumerate(texts)]


def check_formula(value, trace):
    checker = FormulaChecker(to_formula(value))
    verdict = Verdict.DEMAND
    for state in trace:
        verdict = checker.observe(state)
    return verdict, checker


class TestFormulaBuilding:
    def test_temporal_operator_yields_formula_value(self):
        state = states("a")[0]
        value = run_expr("always{0} (`#x`.text == \"a\")", state=state)
        assert isinstance(value, FormulaValue)

    def test_default_subscript_applied(self):
        from repro.quickltl import Always

        state = states("a")[0]
        value = run_expr("always (`#x`.text == \"a\")", state=state, default_subscript=7)
        assert isinstance(value.formula, Always)
        assert value.formula.n == 7

    def test_bool_and_formula_mix(self):
        state = states("a")[0]
        value = run_expr("true && next (`#x`.text == \"b\")", state=state)
        assert isinstance(value, FormulaValue)

    def test_formula_rejected_as_data(self):
        state = states("a")[0]
        with pytest.raises(SpecEvalError):
            run_expr("(next true) == 1", state=state)

    def test_formula_rejected_as_if_condition(self):
        state = states("a")[0]
        with pytest.raises(SpecEvalError):
            run_expr("if next true { 1 } else { 2 }", state=state)


class TestCheckingAgainstTraces:
    def test_safety_invariant(self):
        trace = states("a", "a", "a")
        value = run_expr("always{0} (`#x`.text == \"a\")", state=trace[0])
        verdict, _ = check_formula(value, trace)
        assert verdict is Verdict.PROBABLY_TRUE

    def test_safety_violation(self):
        trace = states("a", "b")
        value = run_expr("always{0} (`#x`.text == \"a\")", state=trace[0])
        verdict, _ = check_formula(value, trace)
        assert verdict is Verdict.DEFINITELY_FALSE

    def test_liveness_witness(self):
        trace = states("a", "a", "done")
        value = run_expr("eventually{0} (`#x`.text == \"done\")", state=trace[0])
        verdict, _ = check_formula(value, trace)
        assert verdict is Verdict.DEFINITELY_TRUE

    def test_next_reads_following_state(self):
        trace = states("a", "b")
        value = run_expr("next (`#x`.text == \"b\")", state=trace[0])
        verdict, _ = check_formula(value, trace)
        assert verdict is Verdict.DEFINITELY_TRUE

    def test_lazy_binding_tracks_state(self):
        module = load_module(
            'let ~current = `#x`.text; let ~prop = always{0} (current != "bad");'
        )
        formula = to_formula(
            evaluate(Var("prop"), module.env, EvalContext(state=states("a")[0]))
        )
        checker = FormulaChecker(formula)
        assert checker.observe(states("a")[0]) is Verdict.PROBABLY_TRUE
        assert checker.observe(states("bad")[0]) is Verdict.DEFINITELY_FALSE


class TestEvovae:
    """The Section 3.1 example: ``evovae(x)`` must freeze x's *initial*
    value and compare all later values against it -- which requires a lazy
    parameter plus a strict local let."""

    SOURCE = """
    let ~txt = `#x`.text;
    let evovae(~x) = { let v = x; always{0} (x == v) };
    let ~prop = evovae(txt);
    """

    def build(self, first_state):
        module = load_module(self.SOURCE)
        ctx = EvalContext(state=first_state)
        return to_formula(evaluate(Var("prop"), module.env, ctx))

    def test_holds_while_value_unchanged(self):
        trace = states("same", "same", "same")
        checker = FormulaChecker(self.build(trace[0]))
        for state in trace:
            verdict = checker.observe(state)
        assert verdict is Verdict.PROBABLY_TRUE

    def test_fails_when_value_changes(self):
        trace = states("orig", "orig", "changed")
        checker = FormulaChecker(self.build(trace[0]))
        verdicts = [checker.observe(s) for s in trace]
        assert verdicts[-1] is Verdict.DEFINITELY_FALSE

    def test_strict_parameter_is_trivially_true(self):
        """With a strict parameter, x is evaluated once at call time and
        the property degenerates to ``always (v == v)`` -- the pitfall
        the paper's ~ annotation exists to avoid."""
        module = load_module(
            """
            let ~txt = `#x`.text;
            let evovae_strict(x) = { let v = x; always{0} (x == v) };
            let ~prop = evovae_strict(txt);
            """
        )
        trace = states("orig", "changed", "other")
        ctx = EvalContext(state=trace[0])
        formula = to_formula(evaluate(Var("prop"), module.env, ctx))
        checker = FormulaChecker(formula)
        for state in trace:
            verdict = checker.observe(state)
        assert verdict is Verdict.PROBABLY_TRUE  # trivially: never fails


class TestStrictLetInsideTemporalBody:
    """A strict let inside an always-body freezes per unroll state: the
    egg timer's ``ticking`` uses this to say time decrements by one."""

    SOURCE = """
    let ~time = parseInt(`#x`.text);
    let ~decrements = always{0} { let old = time; next (time == old - 1) };
    """

    def test_decrementing_counter_satisfies(self):
        module = load_module(self.SOURCE)
        trace = states("5", "4", "3", "2")
        ctx = EvalContext(state=trace[0])
        formula = to_formula(evaluate(Var("decrements"), module.env, ctx))
        checker = FormulaChecker(formula)
        verdicts = [checker.observe(s) for s in trace]
        assert Verdict.DEFINITELY_FALSE not in verdicts

    def test_jump_is_caught(self):
        module = load_module(self.SOURCE)
        trace = states("5", "4", "1")
        ctx = EvalContext(state=trace[0])
        formula = to_formula(evaluate(Var("decrements"), module.env, ctx))
        checker = FormulaChecker(formula)
        verdicts = [checker.observe(s) for s in trace]
        assert verdicts[-1] is Verdict.DEFINITELY_FALSE
