"""The Specstrom evaluator: data operations and state queries."""

import pytest

from repro.specstrom import (
    SpecEvalError,
    StateQueryOutsideStateError,
)

from .helpers import element, run_expr, snapshot


class TestLiteralsAndOperators:
    def test_arithmetic(self):
        assert run_expr("1 + 2 * 3") == 7
        assert run_expr("10 - 4") == 6
        assert run_expr("7 % 3") == 1

    def test_division_is_exact_when_possible(self):
        assert run_expr("6 / 3") == 2
        assert run_expr("7 / 2") == 3.5

    def test_division_by_zero_is_null(self):
        assert run_expr("1 / 0") is None
        assert run_expr("1 % 0") is None

    def test_string_concatenation(self):
        assert run_expr('"a" + "b"') == "ab"

    def test_mixed_string_number_addition_rejected(self):
        with pytest.raises(SpecEvalError):
            run_expr('"a" + 1')

    def test_comparisons(self):
        assert run_expr("2 < 3") is True
        assert run_expr('"a" < "b"') is True
        assert run_expr("3 >= 3") is True

    def test_comparison_with_null_is_false(self):
        assert run_expr("null < 3") is False
        assert run_expr("3 < null") is False

    def test_equality_is_structural(self):
        assert run_expr("[1, 2] == [1, 2]") is True
        assert run_expr("{a: 1} == {a: 1}") is True
        assert run_expr("1 == 1.0") is True

    def test_bool_not_equal_number(self):
        assert run_expr("true == 1") is False

    def test_null_propagation_in_arithmetic(self):
        assert run_expr("null + 1") is None
        assert run_expr("-null") is None

    def test_logical_short_circuit(self):
        # The right side would error (undefined name) if evaluated.
        assert run_expr("false && nope") is False
        assert run_expr("true || nope") is True
        assert run_expr("false ==> nope") is True

    def test_logical_requires_booleans(self):
        with pytest.raises(SpecEvalError):
            run_expr("1 && true")
        with pytest.raises(SpecEvalError):
            run_expr("true && 1")

    def test_not(self):
        assert run_expr("!false") is True
        with pytest.raises(SpecEvalError):
            run_expr("!1")

    def test_membership(self):
        assert run_expr("2 in [1, 2, 3]") is True
        assert run_expr('"bc" in "abcd"') is True
        assert run_expr('"a" in {a: 1}') is True
        with pytest.raises(SpecEvalError):
            run_expr("1 in 2")


class TestIfAndBlocks:
    def test_if_expression(self):
        assert run_expr("if 1 < 2 { 10 } else { 20 }") == 10

    def test_if_condition_must_be_bool(self):
        with pytest.raises(SpecEvalError):
            run_expr("if 1 { 2 } else { 3 }")

    def test_block_strict_bindings(self):
        assert run_expr("{ let x = 2; let y = x * 3; y + 1 }") == 7

    def test_block_shadowing(self):
        assert run_expr("{ let x = 1; { let x = 2; x } + x }") == 3

    def test_block_forward_reference_rejected(self):
        with pytest.raises(SpecEvalError):
            run_expr("{ let ~a = b; let b = 1; a }")


class TestIndexingAndMembers:
    def test_list_indexing(self):
        assert run_expr("[10, 20][1]") == 20

    def test_out_of_range_is_null(self):
        assert run_expr("[10][5]") is None

    def test_string_indexing(self):
        assert run_expr('"abc"[1]') == "b"

    def test_object_member(self):
        assert run_expr("{a: 5}.a") == 5
        assert run_expr("{a: 5}.b") is None

    def test_length_member(self):
        assert run_expr("[1,2,3].length") == 3
        assert run_expr('"abcd".length') == 4

    def test_member_on_null_is_null(self):
        assert run_expr("null.anything") is None

    def test_member_on_number_rejected(self):
        with pytest.raises(SpecEvalError):
            run_expr("(1).x")


class TestStateQueries:
    def state(self):
        return snapshot(
            {
                "#toggle": [element(tag="button", text="start")],
                ".item": [
                    element(tag="li", text="one", classes=["completed"]),
                    element(tag="li", text="two", visible=False),
                ],
                ".none": [],
            },
            happened=["loaded?"],
        )

    def test_selector_member_queries_first_match(self):
        assert run_expr("`#toggle`.text", state=self.state()) == "start"

    def test_selector_member_missing_is_null(self):
        assert run_expr("`.none`.text", state=self.state()) is None

    def test_selector_query_without_state_raises(self):
        with pytest.raises(StateQueryOutsideStateError):
            run_expr("`#toggle`.text")

    def test_happened(self):
        assert run_expr("happened", state=self.state()) == ["loaded?"]
        assert run_expr("loaded? in happened", state=self.state()) is True

    def test_happened_without_state_raises(self):
        with pytest.raises(StateQueryOutsideStateError):
            run_expr("happened")

    def test_element_properties(self):
        state = self.state()
        assert run_expr("first(elements(`.item`)).text", state=state) == "one"
        assert run_expr("first(elements(`.item`)).classes", state=state) == [
            "completed"
        ]
        assert run_expr("nth(elements(`.item`), 1).visible", state=state) is False

    def test_unknown_selector_not_in_dependency_set(self):
        with pytest.raises(Exception):
            run_expr("`#unknown`.text", state=self.state())


class TestFunctions:
    def test_user_function_via_module_env(self):
        from repro.specstrom import load_module

        module = load_module("let double(x) = x * 2; let y = double(21);")
        assert module.env.lookup("y") == 42

    def test_lazy_parameter_defers_evaluation(self):
        """A lazy parameter is re-evaluated at use, so passing a
        state-query works even when the call happens statelessly."""
        from repro.specstrom import load_module, EvalContext, evaluate
        from repro.specstrom.ast_nodes import Var

        module = load_module(
            "let ~t = `#x`.text; let pick(~v) = v; let ~picked = pick(t);"
        )
        state = snapshot({"#x": [element(text="hello")]})
        ctx = EvalContext(state=state)
        assert evaluate(Var("picked"), module.env, ctx) == "hello"

    def test_strict_parameter_evaluated_at_call(self):
        from repro.specstrom import load_module

        with pytest.raises(StateQueryOutsideStateError):
            # pick's strict parameter forces the state query at load time.
            load_module("let pick(v) = v; let picked = pick(`#x`.text);")
