"""Shared helpers for Specstrom tests: snapshot builders and evaluation."""

from __future__ import annotations

from repro.specstrom import (
    ElementSnapshot,
    EvalContext,
    StateSnapshot,
    evaluate,
    global_environment,
    parse_expression,
)

__all__ = ["snapshot", "run_expr", "element"]


def element(**kwargs) -> ElementSnapshot:
    kwargs.setdefault("tag", "div")
    if "classes" in kwargs:
        kwargs["classes"] = tuple(kwargs["classes"])
    if "attributes" in kwargs:
        kwargs["attributes"] = tuple(sorted(kwargs["attributes"].items()))
    return ElementSnapshot(**kwargs)


def snapshot(queries=None, happened=(), version=0) -> StateSnapshot:
    """Build a snapshot; ``queries`` maps selector -> list of elements."""
    prepared = {}
    for css, elements in (queries or {}).items():
        prepared[css] = tuple(elements)
    return StateSnapshot(prepared, tuple(happened), version, float(version))


def run_expr(source: str, state=None, env=None, rng=None, default_subscript=100):
    """Parse and evaluate a single expression."""
    expr = parse_expression(source)
    environment = env if env is not None else global_environment()
    ctx = EvalContext(state=state, rng=rng, default_subscript=default_subscript)
    return evaluate(expr, environment, ctx)
