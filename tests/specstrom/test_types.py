"""The invisible type system: recursion ban, functions-as-data ban, arity."""

import pytest

from repro.specstrom import SpecTypeError, load_module, parse_module
from repro.specstrom.types import check_module


def check(source):
    return check_module(parse_module(source))


class TestRecursionBan:
    def test_self_recursion_rejected(self):
        with pytest.raises(SpecTypeError, match="recursion"):
            check("let f(x) = f(x);")

    def test_mutual_recursion_rejected(self):
        with pytest.raises(SpecTypeError, match="recursion"):
            check("let f(x) = g(x); let g(x) = f(x);")

    def test_self_reference_in_lazy_let_rejected(self):
        with pytest.raises(SpecTypeError, match="recursion"):
            check("let ~x = next x;")

    def test_cycle_through_action_rejected(self):
        with pytest.raises(SpecTypeError, match="recursion"):
            check("let ~g = a! in happened; action a! = noop! when g;")

    def test_dag_references_fine(self):
        check("let a = 1; let b = a + 1; let c = a + b;")

    def test_use_before_definition_in_source_order_is_fine(self):
        # Lazy lets may reference later definitions (the graph is still
        # acyclic); the real TodoMVC spec relies on this.
        check("let ~a = b; let ~b = 1;")


class TestDuplicatesAndUnknowns:
    def test_duplicate_definition_rejected(self):
        with pytest.raises(SpecTypeError, match="duplicate"):
            check("let x = 1; let x = 2;")

    def test_shadowing_builtin_rejected(self):
        with pytest.raises(SpecTypeError, match="shadows"):
            check("let parseInt = 1;")

    def test_undefined_name_rejected(self):
        with pytest.raises(SpecTypeError, match="undefined"):
            check("let x = nope;")

    def test_undefined_action_in_check_rejected(self):
        with pytest.raises(SpecTypeError, match="undefined action"):
            check("let ~p = true; check p with go!;")


class TestFunctionsAsData:
    def test_function_in_array_rejected(self):
        with pytest.raises(SpecTypeError, match="function"):
            check("let f(x) = x; let xs = [f];")

    def test_function_in_object_rejected(self):
        with pytest.raises(SpecTypeError, match="function"):
            check("let f(x) = x; let o = {g: f};")

    def test_function_as_operand_rejected(self):
        with pytest.raises(SpecTypeError, match="function"):
            check("let f(x) = x; let y = f + 1;")

    def test_function_in_comparison_rejected(self):
        with pytest.raises(SpecTypeError, match="function"):
            check("let f(x) = x; let y = f == f;")

    def test_function_as_if_branch_rejected(self):
        with pytest.raises(SpecTypeError, match="function"):
            check("let f(x) = x; let y = if true { f } else { f };")

    def test_function_as_builtin_data_arg_rejected(self):
        with pytest.raises(SpecTypeError, match="function"):
            check("let f(x) = x; let y = parseInt(f);")

    def test_higher_order_builtins_accept_functions(self):
        check("let isPositive(x) = x > 0; let ys = filter(isPositive, [1, 0 - 2]);")

    def test_functions_passable_to_user_functions(self):
        check("let apply(f, x) = f(x); let inc(n) = n + 1; let y = apply(inc, 1);")


class TestArityAndCalls:
    def test_calling_non_function_rejected(self):
        with pytest.raises(SpecTypeError, match="not a function"):
            check("let x = 1; let y = x(2);")

    def test_arity_mismatch_rejected(self):
        with pytest.raises(SpecTypeError, match="argument"):
            check("let f(a, b) = a; let y = f(1);")

    def test_builtin_data_call_rejected(self):
        with pytest.raises(SpecTypeError, match="not a function"):
            check("let y = happened(1);")

    def test_param_used_both_ways_rejected(self):
        with pytest.raises(SpecTypeError):
            check("let f(g) = g(1) + g; let y = f(1);")

    def test_duplicate_params_rejected(self):
        with pytest.raises(SpecTypeError, match="duplicate parameter"):
            check("let f(a, a) = a;")

    def test_map_predicate_must_be_function(self):
        with pytest.raises(SpecTypeError, match="must be a function"):
            check("let y = map(1, [1, 2]);")


class TestLoadModuleIntegration:
    def test_type_errors_surface_through_load(self):
        with pytest.raises(SpecTypeError):
            load_module("let f(x) = f(x);")

    def test_valid_module_loads(self):
        module = load_module("let inc(n) = n + 1; let three = inc(2);")
        assert module.env.lookup("three") == 3
