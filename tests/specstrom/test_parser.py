"""Specstrom parser: expressions and top-level definitions."""

import pytest

from repro.specstrom import SpecSyntaxError, parse_expression, parse_module
from repro.specstrom.ast_nodes import (
    ArrayLit,
    Binary,
    Block,
    Call,
    IfExpr,
    Index,
    Member,
    ObjectLit,
    SelectorLit,
    TemporalBinary,
    TemporalUnary,
    Unary,
    Var,
)


class TestExpressionBasics:
    def test_literals(self):
        assert parse_expression("42").value == 42
        assert parse_expression('"hi"').value == "hi"
        assert parse_expression("true").value is True
        assert parse_expression("null").value is None

    def test_selector_literal(self):
        expr = parse_expression("`#toggle`")
        assert isinstance(expr, SelectorLit) and expr.css == "#toggle"

    def test_member_chain(self):
        expr = parse_expression("`#toggle`.text")
        assert isinstance(expr, Member) and expr.name == "text"
        assert isinstance(expr.obj, SelectorLit)

    def test_index(self):
        expr = parse_expression("xs[0]")
        assert isinstance(expr, Index)

    def test_call_with_args(self):
        expr = parse_expression("parseInt(`#remaining`.text)")
        assert isinstance(expr, Call) and len(expr.args) == 1

    def test_call_action_name(self):
        expr = parse_expression("click!(`#toggle`)")
        assert isinstance(expr, Call)
        assert isinstance(expr.callee, Var) and expr.callee.name == "click!"

    def test_array_and_object(self):
        arr = parse_expression("[1, 2, 3]")
        assert isinstance(arr, ArrayLit) and len(arr.items) == 3
        obj = parse_expression('{a: 1, "b c": 2}')
        assert isinstance(obj, ObjectLit)
        assert [k for k, _ in obj.pairs] == ["a", "b c"]

    def test_empty_object(self):
        assert isinstance(parse_expression("{}"), ObjectLit)


class TestPrecedence:
    def test_arithmetic(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, Binary) and expr.op == "+"
        assert isinstance(expr.right, Binary) and expr.right.op == "*"

    def test_comparison_binds_tighter_than_and(self):
        expr = parse_expression("time == 180 && started")
        assert expr.op == "&&"
        assert expr.left.op == "=="

    def test_and_binds_tighter_than_or(self):
        expr = parse_expression("a || b && c")
        assert expr.op == "||"
        assert expr.right.op == "&&"

    def test_implication_loosest_and_right_assoc(self):
        expr = parse_expression("a ==> b ==> c")
        assert expr.op == "==>"
        assert expr.right.op == "==>"

    def test_in_operator(self):
        expr = parse_expression("start! in happened && ok")
        assert expr.op == "&&"
        assert expr.left.op == "in"

    def test_unary_minus(self):
        expr = parse_expression("-x + 1")
        assert expr.op == "+"
        assert isinstance(expr.left, Unary)

    def test_not(self):
        expr = parse_expression("!a && b")
        assert expr.op == "&&"
        assert isinstance(expr.left, Unary)

    def test_parentheses(self):
        expr = parse_expression("(a || b) && c")
        assert expr.op == "&&"
        assert expr.left.op == "||"


class TestTemporalSyntax:
    def test_always_with_subscript(self):
        expr = parse_expression("always{400} ok")
        assert isinstance(expr, TemporalUnary)
        assert expr.op == "always" and expr.subscript == 400

    def test_always_without_subscript(self):
        expr = parse_expression("always ok")
        assert expr.subscript is None

    def test_eventually_nested(self):
        expr = parse_expression("always{100} eventually{5} menuEnabled")
        assert expr.op == "always"
        assert expr.body.op == "eventually" and expr.body.subscript == 5

    def test_next_variants(self):
        for op in ("next", "wnext", "snext"):
            expr = parse_expression(f"{op} ok")
            assert isinstance(expr, TemporalUnary) and expr.op == op

    def test_until_release(self):
        expr = parse_expression("a until{3} b")
        assert isinstance(expr, TemporalBinary) and expr.subscript == 3
        expr = parse_expression("a release b")
        assert expr.op == "release" and expr.subscript is None

    def test_always_with_block_body(self):
        expr = parse_expression("always { let x = 1; x == 1 }")
        assert expr.op == "always" and expr.subscript is None
        assert isinstance(expr.body, Block)

    def test_subscript_then_parenthesised_body(self):
        expr = parse_expression("always{400} (a || b)")
        assert expr.subscript == 400
        assert isinstance(expr.body, Binary)

    def test_temporal_binds_tighter_than_and(self):
        expr = parse_expression("always a && b")
        assert expr.op == "&&"
        assert isinstance(expr.left, TemporalUnary)


class TestBlocksAndIf:
    def test_block_with_bindings(self):
        expr = parse_expression("{ let x = 1; let ~y = x; x == 1 }")
        assert isinstance(expr, Block)
        assert [b.name for b in expr.bindings] == ["x", "y"]
        assert [b.lazy for b in expr.bindings] == [False, True]

    def test_if_else(self):
        expr = parse_expression("if time == 0 { stopped } else { started }")
        assert isinstance(expr, IfExpr)

    def test_else_if_chain(self):
        expr = parse_expression("if a { 1 } else if b { 2 } else { 3 }")
        assert isinstance(expr.orelse, IfExpr)

    def test_if_requires_else(self):
        with pytest.raises(SpecSyntaxError):
            parse_expression("if a { 1 }")


class TestTopLevel:
    def test_simple_let(self):
        module = parse_module("let x = 1;")
        assert module.lets[0].name == "x"
        assert not module.lets[0].lazy

    def test_lazy_let(self):
        module = parse_module("let ~stopped = `#toggle`.text == \"start\";")
        assert module.lets[0].lazy

    def test_function_let(self):
        module = parse_module("let f(a, ~b) = a;")
        let = module.lets[0]
        assert [p.name for p in let.params] == ["a", "b"]
        assert [p.lazy for p in let.params] == [False, True]

    def test_block_form_let(self):
        module = parse_module("let ~ticking { let old = 1; old == 1 }")
        assert isinstance(module.lets[0].body, Block)

    def test_action_definition(self):
        module = parse_module("action start! = click!(`#toggle`) when stopped;")
        action = module.actions[0]
        assert action.name == "start!"
        assert action.guard is not None
        assert action.timeout is None

    def test_action_with_timeout(self):
        module = parse_module("action wait! = noop! timeout 1000 when started;")
        action = module.actions[0]
        assert action.timeout.value == 1000
        assert action.guard is not None

    def test_event_definition(self):
        module = parse_module("action tick? = changed?(`#remaining`);")
        assert module.actions[0].is_event

    def test_action_name_needs_suffix(self):
        with pytest.raises(SpecSyntaxError):
            parse_module("action go = noop!;")

    def test_check_single(self):
        module = parse_module("let ~p = true; check p;")
        assert len(module.checks) == 1
        assert len(module.checks[0].properties) == 1

    def test_check_juxtaposed_properties(self):
        """Paper syntax: ``check safety liveness;``"""
        module = parse_module("let ~a = true; let ~b = true; check a b;")
        assert len(module.checks[0].properties) == 2

    def test_check_comma_properties(self):
        module = parse_module("let ~a = true; let ~b = true; check a, b;")
        assert len(module.checks[0].properties) == 2

    def test_check_with_actions(self):
        module = parse_module(
            "let ~p = true; action go! = noop!; check p with go!;"
        )
        assert module.checks[0].with_actions == ["go!"]

    def test_check_with_multiple_actions(self):
        module = parse_module(
            "let ~p = true;"
            "action a! = noop!; action b! = noop!; action t? = changed?(`#x`);"
            "check p with a!, b!, t?;"
        )
        assert module.checks[0].with_actions == ["a!", "b!", "t?"]

    def test_module_rejects_garbage(self):
        with pytest.raises(SpecSyntaxError):
            parse_module("42;")


class TestErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "let = 1;",
            "let x 1;",
            "let x = ;",
            "a &&",
            "(a",
            "xs[1",
            "{ let x = 1; }",
            "f(a,)",
            "check ;",
        ],
    )
    def test_rejected(self, source):
        with pytest.raises(SpecSyntaxError):
            if source.startswith(("let", "check")):
                parse_module(source)
            else:
                parse_expression(source)

    def test_error_carries_position(self):
        try:
            parse_module("let x =\n  ;")
        except SpecSyntaxError as err:
            assert err.line == 2
        else:  # pragma: no cover
            raise AssertionError("expected a syntax error")
