"""The command-line interface."""

import pytest

from repro.cli import main
from repro.specs import spec_path


class TestListImplementations:
    def test_lists_all(self, capsys):
        assert main(["list-implementations"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 43
        assert "vanillajs" in out
        assert "problems 8" in out


class TestCheck:
    def test_eggtimer_safety_passes(self, capsys):
        code = main(
            [
                "check", spec_path("eggtimer.strom"),
                "--app", "eggtimer",
                "--property", "safety",
                "--tests", "2",
                "--actions", "15",
                "--subscript", "400",
                "--seed", "5",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "safety: PASSED" in out

    def test_todomvc_faulty_implementation_fails(self, capsys):
        code = main(
            [
                "check", spec_path("todomvc.strom"),
                "--app", "todomvc:polymer",
                "--property", "safety",
                "--tests", "6",
                "--actions", "40",
                "--subscript", "40",
                "--seed", "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "safety: FAILED" in out
        assert "counterexample" in out

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["check", spec_path("eggtimer.strom"), "--app", "nope"])

    def test_unknown_property_rejected(self):
        with pytest.raises(KeyError):
            main(
                [
                    "check", spec_path("eggtimer.strom"),
                    "--app", "eggtimer",
                    "--property", "bogus",
                ]
            )


class TestAudit:
    def test_audit_named_implementations(self, capsys):
        code = main(
            [
                "audit", "vue", "polymer",
                "--subscript", "40",
                "--tests", "6",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "vue" in out and "polymer" in out
        assert "2/2 agree" in out
