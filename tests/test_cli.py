"""The command-line interface."""

import pytest

from repro.cli import main
from repro.specs import spec_path


class TestListImplementations:
    def test_lists_all(self, capsys):
        assert main(["list-implementations"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 43
        assert "vanillajs" in out
        assert "problems 8" in out


class TestCheck:
    def test_eggtimer_safety_passes(self, capsys):
        code = main(
            [
                "check", spec_path("eggtimer.strom"),
                "--app", "eggtimer",
                "--property", "safety",
                "--tests", "2",
                "--actions", "15",
                "--subscript", "400",
                "--seed", "5",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "safety: PASSED" in out

    def test_todomvc_faulty_implementation_fails(self, capsys):
        code = main(
            [
                "check", spec_path("todomvc.strom"),
                "--app", "todomvc:polymer",
                "--property", "safety",
                "--tests", "6",
                "--actions", "40",
                "--subscript", "40",
                "--seed", "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "safety: FAILED" in out
        assert "counterexample" in out

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["check", spec_path("eggtimer.strom"), "--app", "nope"])

    def test_unknown_property_rejected(self):
        with pytest.raises(KeyError):
            main(
                [
                    "check", spec_path("eggtimer.strom"),
                    "--app", "eggtimer",
                    "--property", "bogus",
                ]
            )


class TestAudit:
    def test_audit_named_implementations(self, capsys):
        code = main(
            [
                "audit", "vue", "polymer",
                "--subscript", "40",
                "--tests", "6",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "vue" in out and "polymer" in out
        assert "2/2 agree" in out

    def test_audit_jobs_spans_campaigns_identically(self, capsys):
        args = ["audit", "vue", "polymer", "mithril",
                "--subscript", "40", "--tests", "4"]
        code_serial = main(args)
        serial_out = capsys.readouterr().out
        code_pooled = main(args + ["--jobs", "3"])
        pooled_out = capsys.readouterr().out
        assert code_serial == code_pooled == 0
        assert serial_out == pooled_out  # verdict-for-verdict identical

    def test_audit_junit_report_file(self, capsys, tmp_path):
        from xml.etree import ElementTree

        report = tmp_path / "audit.xml"
        code = main(
            [
                "audit", "vue", "polymer",
                "--subscript", "40",
                "--tests", "2",
                "--jobs", "2",
                "--format", "junit",
                "--report-file", str(report),
            ]
        )
        assert code == 0
        root = ElementTree.fromstring(report.read_text(encoding="utf-8"))
        suite_names = [s.get("name") for s in root.iter("testsuite")]
        assert suite_names == ["vue", "polymer"]
        assert root.get("failures") == "1"  # polymer's expected failure
        # The console table still goes to stdout alongside the file.
        assert "2/2 agree" in capsys.readouterr().out

    def test_audit_junit_to_stdout_is_pure_xml(self, capsys):
        from xml.etree import ElementTree

        code = main(
            [
                "audit", "vue",
                "--subscript", "40",
                "--tests", "1",
                "--format", "junit",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        root = ElementTree.fromstring(out)
        assert root.tag == "testsuites"

    def test_report_file_requires_junit_format(self):
        with pytest.raises(SystemExit, match="--format junit"):
            main(["audit", "vue", "--format", "json",
                  "--report-file", "out.json"])
        with pytest.raises(SystemExit, match="--format junit"):
            main(["check", spec_path("eggtimer.strom"), "--app", "eggtimer",
                  "--report-file", "report.xml"])

    def test_audit_json_event_stream(self, capsys):
        import json

        code = main(
            [
                "audit", "vue",
                "--subscript", "40",
                "--tests", "1",
                "--format", "json",
            ]
        )
        assert code == 0
        records = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line
        ]
        assert records[-1]["event"] == "audit_end"
        assert records[-1]["agreeing"] == 1
        pool = records[-1]["pool"]
        assert pool["tasks_total"] == 1
        assert pool["warm_hits"] + pool["cold_starts"] == 1

    def test_audit_no_reuse_matches_default_output(self, capsys):
        args = ["audit", "vue", "polymer", "--subscript", "40", "--tests", "3"]
        code_warm = main(args)
        warm_out = capsys.readouterr().out
        code_cold = main(args + ["--no-reuse"])
        cold_out = capsys.readouterr().out
        assert code_warm == code_cold == 0
        assert warm_out == cold_out  # warm reuse never changes verdicts
