"""The command-line interface."""

import pytest

from repro.cli import main
from repro.specs import spec_path


class TestListImplementations:
    def test_lists_all(self, capsys):
        assert main(["list-implementations"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 43
        assert "vanillajs" in out
        assert "problems 8" in out


class TestCheck:
    def test_eggtimer_safety_passes(self, capsys):
        code = main(
            [
                "check", spec_path("eggtimer.strom"),
                "--app", "eggtimer",
                "--property", "safety",
                "--tests", "2",
                "--actions", "15",
                "--subscript", "400",
                "--seed", "5",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "safety: PASSED" in out

    def test_todomvc_faulty_implementation_fails(self, capsys):
        code = main(
            [
                "check", spec_path("todomvc.strom"),
                "--app", "todomvc:polymer",
                "--property", "safety",
                "--tests", "6",
                "--actions", "40",
                "--subscript", "40",
                "--seed", "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "safety: FAILED" in out
        assert "counterexample" in out

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["check", spec_path("eggtimer.strom"), "--app", "nope"])

    def test_unknown_property_rejected(self):
        with pytest.raises(KeyError):
            main(
                [
                    "check", spec_path("eggtimer.strom"),
                    "--app", "eggtimer",
                    "--property", "bogus",
                ]
            )


class TestCompileInspect:
    def test_compile_then_inspect(self, capsys, tmp_path):
        import json

        artifact = str(tmp_path / "egg.qsa")
        code = main(
            ["compile", spec_path("eggtimer.strom"), "-o", artifact]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "3 check(s): safety, liveness, timeUp" in out

        assert main(["inspect", artifact]) == 0
        header = json.loads(capsys.readouterr().out)
        assert {c["name"] for c in header["checks"]} == {
            "safety", "liveness", "timeUp",
        }
        assert header["artifact_version"] >= 1

    def test_compile_default_output_is_qsa_sibling(self, capsys, tmp_path):
        source = open(spec_path("eggtimer.strom")).read()
        spec_file = tmp_path / "egg.strom"
        spec_file.write_text(source)
        assert main(["compile", str(spec_file)]) == 0
        capsys.readouterr()
        assert (tmp_path / "egg.qsa").exists()

    def test_check_accepts_an_artifact(self, capsys, tmp_path):
        artifact = str(tmp_path / "egg.qsa")
        main(["compile", spec_path("eggtimer.strom"), "-o", artifact])
        capsys.readouterr()
        code = main(
            [
                "check", artifact,
                "--app", "eggtimer",
                "--property", "safety",
                "--tests", "2",
                "--actions", "15",
                "--subscript", "400",
                "--seed", "5",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "safety: PASSED" in out

    def test_inspect_rejects_a_non_artifact(self, tmp_path):
        junk = tmp_path / "junk.qsa"
        junk.write_bytes(b"not an artifact")
        with pytest.raises(SystemExit):
            main(["inspect", str(junk)])


class TestMonitorCheckpointCLI:
    def test_split_run_with_restore_matches_full_run(self, capsys, tmp_path):
        from repro.monitor.synth import synth_lines

        lines = list(synth_lines(sessions=8, seed=3))
        cut = len(lines) // 2
        for name, chunk in (("full", lines), ("part1", lines[:cut]),
                            ("part2", lines[cut:])):
            (tmp_path / f"{name}.jsonl").write_text(
                "".join(line + "\n" for line in chunk)
            )
        base = ["monitor", spec_path("eggtimer.strom"),
                "--property", "safety", "--format", "json"]
        ckpt = str(tmp_path / "ckpt")

        import json

        def verdict_lines(out):
            records = [json.loads(line) for line in out.splitlines() if line]
            return [r for r in records if "event" not in r]

        def end_event(out):
            records = [json.loads(line) for line in out.splitlines() if line]
            return records[-1]

        assert main(base + ["--input", str(tmp_path / "full.jsonl")]) == 0
        full_out = capsys.readouterr().out

        assert main(base + ["--input", str(tmp_path / "part1.jsonl"),
                            "--checkpoint", ckpt]) == 0
        part1_out = capsys.readouterr().out
        assert main(base + ["--input", str(tmp_path / "part2.jsonl"),
                            "--checkpoint", ckpt, "--restore"]) == 0
        part2_out = capsys.readouterr().out
        # The verdict stream is byte-identical across the split; the
        # trailing monitor_end metrics line differs only in
        # restart-sensitive counters (wall clock, cache warmth).
        assert (verdict_lines(part1_out) + verdict_lines(part2_out)
                == verdict_lines(full_out))
        full_end = end_event(full_out)["metrics"]
        resumed_end = end_event(part2_out)["metrics"]
        for key in ("records_ingested", "sessions_started",
                    "sessions_finished", "states_applied", "verdicts"):
            assert resumed_end[key] == full_end[key], key

    def test_restore_without_checkpoint_dir_is_rejected(self):
        with pytest.raises(SystemExit, match="--checkpoint"):
            main(["monitor", spec_path("eggtimer.strom"), "--restore",
                  "--input", "-"])


class TestMonitorShardedCLI:
    def test_sharded_run_matches_single_process(self, capsys, tmp_path):
        import json

        from repro.monitor.synth import synth_lines

        lines = list(synth_lines(sessions=12, seed=3, fault_rate=0.2))
        stream = tmp_path / "stream.jsonl"
        stream.write_text("".join(line + "\n" for line in lines))
        base = ["monitor", spec_path("eggtimer.strom"),
                "--property", "safety", "--format", "json",
                "--input", str(stream)]

        def split(out):
            records = [json.loads(line) for line in out.splitlines() if line]
            verdicts = sorted(
                (r["session"], r["verdict"], r["forced"], r["disposition"])
                for r in records if r.get("event") == "verdict"
            )
            assert records[-1]["event"] == "monitor_end"
            return verdicts, records[-1]

        assert main(base) == 0
        single_verdicts, single_end = split(capsys.readouterr().out)
        assert main(base + ["--shards", "2"]) == 0
        sharded_verdicts, sharded_end = split(capsys.readouterr().out)
        # Shards interleave the stream order, never the verdict multiset.
        assert sharded_verdicts == single_verdicts
        assert sharded_end["shards"] == 2
        assert len(sharded_end["shard_metrics"]) == 2
        for key in ("records_ingested", "sessions_started", "verdicts"):
            assert sharded_end["metrics"][key] == single_end["metrics"][key]

    def test_shards_must_be_positive(self):
        with pytest.raises(SystemExit):
            main(["monitor", spec_path("eggtimer.strom"), "--input", "-",
                  "--shards", "0"])


class TestAudit:
    def test_audit_named_implementations(self, capsys):
        code = main(
            [
                "audit", "vue", "polymer",
                "--subscript", "40",
                "--tests", "6",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "vue" in out and "polymer" in out
        assert "2/2 agree" in out

    def test_audit_jobs_spans_campaigns_identically(self, capsys):
        args = ["audit", "vue", "polymer", "mithril",
                "--subscript", "40", "--tests", "4"]
        code_serial = main(args)
        serial_out = capsys.readouterr().out
        code_pooled = main(args + ["--jobs", "3"])
        pooled_out = capsys.readouterr().out
        assert code_serial == code_pooled == 0
        assert serial_out == pooled_out  # verdict-for-verdict identical

    def test_audit_junit_report_file(self, capsys, tmp_path):
        from xml.etree import ElementTree

        report = tmp_path / "audit.xml"
        code = main(
            [
                "audit", "vue", "polymer",
                "--subscript", "40",
                "--tests", "2",
                "--jobs", "2",
                "--format", "junit",
                "--report-file", str(report),
            ]
        )
        assert code == 0
        root = ElementTree.fromstring(report.read_text(encoding="utf-8"))
        suite_names = [s.get("name") for s in root.iter("testsuite")]
        assert suite_names == ["vue", "polymer"]
        assert root.get("failures") == "1"  # polymer's expected failure
        # The console table still goes to stdout alongside the file.
        assert "2/2 agree" in capsys.readouterr().out

    def test_audit_junit_to_stdout_is_pure_xml(self, capsys):
        from xml.etree import ElementTree

        code = main(
            [
                "audit", "vue",
                "--subscript", "40",
                "--tests", "1",
                "--format", "junit",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        root = ElementTree.fromstring(out)
        assert root.tag == "testsuites"

    def test_report_file_requires_junit_format(self):
        with pytest.raises(SystemExit, match="--format junit"):
            main(["audit", "vue", "--format", "json",
                  "--report-file", "out.json"])
        with pytest.raises(SystemExit, match="--format junit"):
            main(["check", spec_path("eggtimer.strom"), "--app", "eggtimer",
                  "--report-file", "report.xml"])

    def test_audit_json_event_stream(self, capsys):
        import json

        code = main(
            [
                "audit", "vue",
                "--subscript", "40",
                "--tests", "1",
                "--format", "json",
            ]
        )
        assert code == 0
        records = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line
        ]
        assert records[-1]["event"] == "audit_end"
        assert records[-1]["agreeing"] == 1
        pool = records[-1]["pool"]
        assert pool["tasks_total"] == 1
        assert pool["warm_hits"] + pool["cold_starts"] == 1

    def test_audit_no_reuse_matches_default_output(self, capsys):
        args = ["audit", "vue", "polymer", "--subscript", "40", "--tests", "3"]
        code_warm = main(args)
        warm_out = capsys.readouterr().out
        code_cold = main(args + ["--no-reuse"])
        cold_out = capsys.readouterr().out
        assert code_warm == code_cold == 0
        assert warm_out == cold_out  # warm reuse never changes verdicts
