"""The async/sync seam: one session loop, two faces.

``Runner.run_single_test`` drives the *same* ``_drive_test_async``
coroutine as ``run_single_test_async`` -- the sync face runs it over a
never-yielding inline adapter.  Identity is therefore by construction,
but these tests pin it observationally anyway: hypothesis-generated
fuzz machines (the same generator the differential fuzzer uses) must
produce byte-identical :class:`TestResult`\\ s through both entry
points, with and without latency injection.
"""

import asyncio
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.engines import _test_seed
from repro.api.lease import ExecutorCache
from repro.api.session import _coerce_executor_factory
from repro.apps.eggtimer import egg_timer_app
from repro.checker import Runner, RunnerConfig
from repro.checker.runner import _drive_inline
from repro.executors import (
    DomExecutor,
    LatencyExecutor,
    SyncExecutorAdapter,
)
from repro.fuzz import generate_campaign, machine_app
from repro.specs import load_eggtimer_spec


def _fuzz_runner(campaign, fault):
    factory = _coerce_executor_factory(machine_app(campaign.machine, fault))
    return Runner(campaign.check_spec(), factory, campaign.config())


def _comparable(result):
    """A TestResult with the intern counters zeroed.

    The hash-cons table is process-global, so whichever drive runs
    second inherits a warmer table; hits/misses are telemetry, never
    semantics (see ``TestResult``'s docstring), and are excluded the
    same way the fuzz oracles exclude them.
    """
    result.intern_hits = result.intern_misses = 0
    return result


class TestAsyncSyncEquivalence:
    """The seam identity, hypothesis-driven over fuzz machines."""

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000), st.integers(0, 3))
    def test_async_drive_equals_sync_drive(self, seed, index):
        campaign = generate_campaign(seed, 0)
        targets = campaign.targets()
        _, fault = targets[index % len(targets)]
        runner = _fuzz_runner(campaign, fault)
        test_seed = _test_seed(campaign.config().seed, index)

        sync_result = runner.run_single_test(random.Random(test_seed))
        async_result = asyncio.run(
            runner.run_single_test_async(random.Random(test_seed))
        )
        assert _comparable(sync_result) == _comparable(async_result)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_latency_wrapping_changes_nothing_but_wall_clock(self, seed):
        # A LatencyExecutor between the driver and the app must be
        # invisible to the verdict, the trace and the virtual clock.
        campaign = generate_campaign(seed, 0)
        _, fault = campaign.targets()[-1]
        runner = _fuzz_runner(campaign, fault)
        test_seed = _test_seed(campaign.config().seed, 0)

        plain = runner.run_single_test(random.Random(test_seed))
        wrapped = asyncio.run(
            runner.run_single_test_async(
                random.Random(test_seed),
                executor_factory=lambda: LatencyExecutor(
                    SyncExecutorAdapter(runner.executor_factory()),
                    latency_ms=0,
                    seed=seed,
                ),
            )
        )
        assert _comparable(plain) == _comparable(wrapped)

    def test_real_latency_still_agrees_on_the_eggtimer(self):
        spec = load_eggtimer_spec().check_named("safety")
        config = RunnerConfig(tests=1, scheduled_actions=8,
                              demand_allowance=6, seed=3, shrink=False)
        runner = Runner(spec, lambda: DomExecutor(egg_timer_app()), config)
        sync_result = runner.run_single_test(random.Random("egg/0"))
        async_result = asyncio.run(
            runner.run_single_test_async(
                random.Random("egg/0"),
                executor_factory=lambda: LatencyExecutor(
                    DomExecutor(egg_timer_app()), latency_ms=2, seed=1
                ),
            )
        )
        assert _comparable(sync_result) == _comparable(async_result)

    def test_leased_async_drive_agrees_and_runs_warm(self):
        campaign = generate_campaign(77, 0)
        runner = _fuzz_runner(campaign, None)
        test_seed = _test_seed(campaign.config().seed, 0)
        baseline = runner.run_single_test(random.Random(test_seed))

        async def leased_pair():
            cache = ExecutorCache(enabled=True, depth=2)
            lease = cache.async_lease(runner.executor_factory)
            first = await runner.run_single_test_async(
                random.Random(test_seed), lease=lease
            )
            cold_warm = lease.warm
            lease = cache.async_lease(runner.executor_factory)
            second = await runner.run_single_test_async(
                random.Random(test_seed), lease=lease
            )
            cache.close()
            return first, second, cold_warm, lease.warm

        first, second, first_warm, second_warm = asyncio.run(leased_pair())
        assert _comparable(first) == _comparable(baseline)
        assert _comparable(second) == _comparable(baseline)
        assert first_warm is False  # cold start
        assert second_warm is True  # reused the parked session


class TestSeamGuards:
    """Misuse fails loudly rather than deadlocking or diverging."""

    def test_sync_entry_rejects_async_factories(self):
        spec = load_eggtimer_spec().check_named("safety")
        runner = Runner(
            spec,
            lambda: SyncExecutorAdapter(DomExecutor(egg_timer_app())),
            RunnerConfig(tests=1, scheduled_actions=4,
                         demand_allowance=4, seed=0, shrink=False),
        )
        with pytest.raises(TypeError, match="run_single_test_async"):
            runner.run_single_test(random.Random(0))

    def test_sync_lease_rejects_async_factories(self):
        from repro.protocol.messages import Start

        cache = ExecutorCache(enabled=True)
        lease = cache.lease(
            lambda: SyncExecutorAdapter(DomExecutor(egg_timer_app()))
        )
        with pytest.raises(TypeError):
            lease.checkout(Start(frozenset(), ()))

    def test_drive_inline_raises_on_a_yielding_executor(self):
        async def actually_blocks():
            await asyncio.sleep(0)

        with pytest.raises(RuntimeError, match="suspended"):
            _drive_inline(actually_blocks())
