"""Counterexample shrinking by replay."""

import pytest

from repro.apps.eggtimer import egg_timer_app
from repro.checker import Runner, RunnerConfig
from repro.executors import DomExecutor
from repro.specs import load_eggtimer_spec


@pytest.fixture(scope="module")
def safety():
    return load_eggtimer_spec().check_named("safety")


def failing_campaign(safety, **app_kwargs):
    factory = lambda: DomExecutor(egg_timer_app(**app_kwargs))
    config = RunnerConfig(tests=5, scheduled_actions=20, demand_allowance=10,
                          seed=3, shrink=True)
    return Runner(safety, factory, config).run()


class TestShrinking:
    def test_shrunk_is_no_longer_than_original(self, safety):
        result = failing_campaign(safety, decrement=2)
        assert not result.passed
        assert result.shrunk_counterexample is not None
        assert len(result.shrunk_counterexample.actions) <= len(
            result.counterexample.actions
        )

    def test_double_decrement_shrinks_to_start_then_wait(self, safety):
        result = failing_campaign(safety, decrement=2)
        names = [n for n, _ in result.shrunk_counterexample.actions]
        assert names == ["start!", "wait!"]

    def test_shrunk_counterexample_still_fails_on_replay(self, safety):
        result = failing_campaign(safety, decrement=2)
        runner = Runner(
            safety,
            lambda: DomExecutor(egg_timer_app(decrement=2)),
            RunnerConfig(seed=0),
        )
        replayed = runner.replay(result.shrunk_counterexample.actions)
        assert replayed is not None
        assert replayed.failed

    def test_shrinking_respects_guards(self, safety):
        """Every action in the shrunk sequence must be legal where it
        fires (a wait! while stopped would itself violate the spec and
        manufacture a bogus 'counterexample')."""
        result = failing_campaign(safety, decrement=2)
        runner = Runner(
            safety,
            lambda: DomExecutor(egg_timer_app(decrement=2)),
            RunnerConfig(seed=0),
        )
        # wait! alone (without start!) is guarded off; the replay must
        # refuse it rather than produce a fake failure.
        wait_only = [a for a in result.counterexample.actions if a[0] == "wait!"][:1]
        assert runner.replay(wait_only) is None

    def test_correct_app_replay_of_failing_trace_passes(self, safety):
        """The same action sequence on the *correct* timer passes: the
        failure lives in the app, not in the trace."""
        result = failing_campaign(safety, decrement=2)
        runner = Runner(
            safety, lambda: DomExecutor(egg_timer_app()), RunnerConfig(seed=0)
        )
        replayed = runner.replay(result.shrunk_counterexample.actions)
        assert replayed is not None
        assert not replayed.failed
