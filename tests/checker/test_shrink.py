"""Counterexample shrinking by replay."""

import pytest

from repro.apps.eggtimer import egg_timer_app
from repro.checker import Runner, RunnerConfig
from repro.executors import DomExecutor
from repro.specs import load_eggtimer_spec


@pytest.fixture(scope="module")
def safety():
    return load_eggtimer_spec().check_named("safety")


def failing_campaign(safety, **app_kwargs):
    factory = lambda: DomExecutor(egg_timer_app(**app_kwargs))
    config = RunnerConfig(tests=5, scheduled_actions=20, demand_allowance=10,
                          seed=3, shrink=True)
    return Runner(safety, factory, config).run()


class TestShrinking:
    def test_shrunk_is_no_longer_than_original(self, safety):
        result = failing_campaign(safety, decrement=2)
        assert not result.passed
        assert result.shrunk_counterexample is not None
        assert len(result.shrunk_counterexample.actions) <= len(
            result.counterexample.actions
        )

    def test_double_decrement_shrinks_to_start_then_wait(self, safety):
        result = failing_campaign(safety, decrement=2)
        names = [n for n, _ in result.shrunk_counterexample.actions]
        assert names == ["start!", "wait!"]

    def test_shrunk_counterexample_still_fails_on_replay(self, safety):
        result = failing_campaign(safety, decrement=2)
        runner = Runner(
            safety,
            lambda: DomExecutor(egg_timer_app(decrement=2)),
            RunnerConfig(seed=0),
        )
        replayed = runner.replay(result.shrunk_counterexample.actions)
        assert replayed is not None
        assert replayed.failed

    def test_shrinking_respects_guards(self, safety):
        """Every action in the shrunk sequence must be legal where it
        fires (a wait! while stopped would itself violate the spec and
        manufacture a bogus 'counterexample')."""
        result = failing_campaign(safety, decrement=2)
        runner = Runner(
            safety,
            lambda: DomExecutor(egg_timer_app(decrement=2)),
            RunnerConfig(seed=0),
        )
        # wait! alone (without start!) is guarded off; the replay must
        # refuse it rather than produce a fake failure.
        wait_only = [a for a in result.counterexample.actions if a[0] == "wait!"][:1]
        assert runner.replay(wait_only) is None

    def test_correct_app_replay_of_failing_trace_passes(self, safety):
        """The same action sequence on the *correct* timer passes: the
        failure lives in the app, not in the trace."""
        result = failing_campaign(safety, decrement=2)
        runner = Runner(
            safety, lambda: DomExecutor(egg_timer_app()), RunnerConfig(seed=0)
        )
        replayed = runner.replay(result.shrunk_counterexample.actions)
        assert replayed is not None
        assert not replayed.failed


class TestReplayBudget:
    """Exhausting _MAX_REPLAYS mid-improvement must keep the best
    candidate found so far, never fall back to the original."""

    @staticmethod
    def _result(actions, verdict):
        from repro.checker.result import TestResult

        return TestResult(
            verdict=verdict,
            forced=False,
            states_observed=len(actions) + 1,
            actions_taken=len(actions),
            stale_rejections=0,
            elapsed_virtual_ms=0.0,
            trace=[],
            actions=list(actions),
        )

    def _scripted_runner(self):
        """Replay 'fails' iff the candidate still contains action "a"
        (so the true minimum is ["a"] alone)."""
        from repro.quickltl import Verdict

        result = self._result

        class ScriptedRunner:
            replays = 0

            def replay(self, candidate):
                self.replays += 1
                if any(name == "a" for name, _ in candidate):
                    return result(candidate, Verdict.DEFINITELY_FALSE)
                return result(candidate, Verdict.DEFINITELY_TRUE)

        return ScriptedRunner()

    def test_budget_exhaustion_keeps_best_so_far(self, monkeypatch):
        from repro.checker import shrink as shrink_module
        from repro.checker.result import Counterexample
        from repro.quickltl import Verdict

        original = [("a", None), ("b", None), ("c", None), ("d", None)]
        counterexample = Counterexample(
            actions=list(original), trace=[], verdict=Verdict.DEFINITELY_FALSE
        )
        # Budget of exactly 2 replays: the first candidate ([c, d])
        # passes, the second ([a, b]) fails -- an improvement -- and the
        # budget is then spent before ddmin can reach the minimum [a].
        monkeypatch.setattr(shrink_module, "_MAX_REPLAYS", 2)
        runner = self._scripted_runner()
        shrunk = shrink_module.shrink_counterexample(runner, counterexample)
        assert runner.replays == 2
        assert [name for name, _ in shrunk.actions] == ["a", "b"]
        # Strictly better than the original, strictly worse than the
        # unreachable minimum -- exactly "best so far".
        assert len(shrunk.actions) < len(original)

    def test_unshrinkable_budget_returns_original(self, monkeypatch):
        from repro.checker import shrink as shrink_module
        from repro.checker.result import Counterexample
        from repro.quickltl import Verdict

        class NeverImproves:
            def replay(self, candidate):
                return None  # no candidate replays successfully

        original = [("a", None), ("b", None)]
        counterexample = Counterexample(
            actions=list(original), trace=[], verdict=Verdict.DEFINITELY_FALSE
        )
        monkeypatch.setattr(shrink_module, "_MAX_REPLAYS", 3)
        shrunk = shrink_module.shrink_counterexample(
            NeverImproves(), counterexample
        )
        assert shrunk is counterexample
