"""Residual-driven query narrowing: the runner/executor contract.

A query the progressed formula can no longer read stops being captured
(the ``Narrow`` protocol message), with the invariant that narrowing is
*invisible*: verdicts, counterexamples and everything the run actually
reads are identical to full capture -- a narrowed state is exactly the
full state restricted to its capture set.
"""

import random

import pytest

from repro.checker import CompiledSpec, Runner, RunnerConfig
from repro.dom import Element
from repro.executors import DomExecutor
from repro.fuzz.oracles import narrowing_mismatch
from repro.quickltl import atom
from repro.specstrom import load_module
from repro.specstrom.analysis import live_queries


def two_phase_app(page):
    """A banner only the first state reads, plus a counter."""
    doc = page.document
    banner = Element("span", {"id": "banner"}, text="ready")
    label = Element("span", {"id": "value"}, text="0")
    button = Element("button", {"id": "inc"}, text="+")
    for element in (banner, label, button):
        doc.root.append_child(element)
    state = {"n": 0}

    def on_click(_event):
        state["n"] += 1
        label.text = str(state["n"])

    doc.add_event_listener(button, "click", on_click)
    return state


#: The first conjunct reads `#banner` once (resolved at the first
#: state); the always-residual only ever reads `#value` (plus the
#: action's `#inc`), so `#banner` goes dead from state 2 on.
TWO_PHASE_SPEC = """
let ~value = parseInt(`#value`.text);
action inc! = click!(`#inc`);
check (`#banner`.text == "ready" && always{10} (value >= 0));
"""


@pytest.fixture(scope="module")
def two_phase_check():
    return load_module(TWO_PHASE_SPEC).checks[0]


def run_one(check, narrow, seed="t/0", **overrides):
    defaults = dict(tests=1, scheduled_actions=6, demand_allowance=6,
                    seed=0, shrink=False, narrow_queries=narrow)
    defaults.update(overrides)
    runner = Runner(check, lambda: DomExecutor(two_phase_app),
                    RunnerConfig(**defaults))
    return runner.run_single_test(random.Random(seed))


class TestNarrowedCapture:
    def test_dead_query_stops_being_captured(self, two_phase_check):
        result = run_one(two_phase_check, narrow=True)
        assert result.passed
        first, *rest = result.trace
        assert "#banner" in first.state.queries
        assert rest, "the test should observe more than the loaded state"
        for entry in rest:
            assert "#banner" not in entry.state.queries
            assert "#value" in entry.state.queries
            assert "#inc" in entry.state.queries  # action deps always stay

    def test_full_capture_without_narrowing(self, two_phase_check):
        result = run_one(two_phase_check, narrow=False)
        for entry in result.trace:
            assert set(entry.state.queries) == set(
                two_phase_check.dependencies
            )

    def test_narrowed_equals_full_restricted(self, two_phase_check):
        full = run_one(two_phase_check, narrow=False)
        narrowed = run_one(two_phase_check, narrow=True)
        assert narrowed.verdict is full.verdict
        assert narrowed.actions == full.actions
        assert narrowing_mismatch(full, narrowed) is None

    def test_width_metrics_reflect_the_narrowing(self, two_phase_check):
        full = run_one(two_phase_check, narrow=False)
        narrowed = run_one(two_phase_check, narrow=True)
        assert narrowed.states_observed == full.states_observed
        assert narrowed.query_width_sum < full.query_width_sum
        assert 0 < narrowed.mean_query_width < full.mean_query_width

    def test_replay_narrows_identically(self, two_phase_check):
        live = run_one(two_phase_check, narrow=True)
        runner = Runner(
            two_phase_check, lambda: DomExecutor(two_phase_app),
            RunnerConfig(tests=1, scheduled_actions=6, demand_allowance=6,
                         seed=0, shrink=False),
        )
        replayed = runner.replay(list(live.actions))
        assert replayed is not None
        assert replayed.verdict is live.verdict
        for entry in replayed.trace[1:]:
            assert "#banner" not in entry.state.queries


class TestConservativeFallbacks:
    def test_declining_executor_keeps_full_capture(self, two_phase_check):
        class DecliningExecutor(DomExecutor):
            def narrow(self, narrow):
                return False

        runner = Runner(
            two_phase_check, lambda: DecliningExecutor(two_phase_app),
            RunnerConfig(tests=1, scheduled_actions=4, demand_allowance=4,
                         seed=0, shrink=False),
        )
        result = runner.run_single_test(random.Random("t/0"))
        assert result.passed
        for entry in result.trace:
            assert set(entry.state.queries) == set(
                two_phase_check.dependencies
            )

    def test_unknown_residual_means_full_capture(self, two_phase_check):
        # A hand-built atom is opaque to the liveness analysis...
        assert live_queries(atom("p")) is None
        # ...so the compiled spec reports "no narrowed set" for it.
        compiled = CompiledSpec(two_phase_check)
        assert compiled.narrowed_dependencies(atom("p")) is None

    def test_always_specs_never_narrow_below_their_reads(
        self, two_phase_check
    ):
        compiled = CompiledSpec(two_phase_check)
        assert compiled.supports_narrowing
        narrowed = compiled.narrowed_dependencies(
            two_phase_check.formula
        )
        # Before any state, the whole property is live: full set.
        assert narrowed == frozenset(two_phase_check.dependencies)


class TestCampaignEquivalence:
    def test_campaigns_agree_with_and_without_narrowing(
        self, two_phase_check
    ):
        results = {}
        for narrow in (False, True):
            runner = Runner(
                two_phase_check, lambda: DomExecutor(two_phase_app),
                RunnerConfig(tests=4, scheduled_actions=8,
                             demand_allowance=6, seed=7, shrink=False,
                             narrow_queries=narrow),
            )
            results[narrow] = runner.run()
        full, narrowed = results[False], results[True]
        assert narrowed.passed == full.passed
        assert [r.verdict for r in narrowed.results] == [
            r.verdict for r in full.results
        ]
        assert [r.actions for r in narrowed.results] == [
            r.actions for r in full.results
        ]
        for full_r, narrow_r in zip(full.results, narrowed.results):
            assert narrowing_mismatch(full_r, narrow_r) is None


class TestDeclineAfterAccept:
    """A backend that accepted earlier narrows but declines a later one
    must be widened back to full -- never left stuck on a stale subset
    the formula has outgrown."""

    class _ScriptedExecutor:
        def __init__(self, answers):
            self.answers = list(answers)
            self.requests = []

        def narrow(self, narrow):
            self.requests.append(frozenset(narrow.dependencies))
            return self.answers.pop(0)

    class _StubCompiled:
        def __init__(self, dependencies):
            class _Spec:
                pass

            self.spec = _Spec()
            self.spec.dependencies = frozenset(dependencies)
            self.supports_narrowing = True
            self.next_target = None

        def narrowed_dependencies(self, residual):
            return self.next_target

    def _narrower(self, answers):
        from repro.checker.runner import QueryNarrower
        from repro.quickltl import TOP

        compiled = self._StubCompiled({"#a", "#b"})

        class _Checker:
            residual = TOP

        executor = self._ScriptedExecutor(answers)
        return QueryNarrower(compiled, executor, _Checker()), compiled, executor

    def test_late_decline_restores_full_capture(self):
        narrower, compiled, executor = self._narrower([True, False, True])
        compiled.next_target = frozenset({"#a"})
        narrower.update()  # accepted: actively narrowed to {#a}
        assert narrower.active == frozenset({"#a"})
        compiled.next_target = frozenset({"#a", "#b"})
        narrower.update()  # widen declined: must restore full capture
        assert executor.requests[-1] == frozenset({"#a", "#b"})
        assert narrower.active == narrower.full
        assert not narrower.enabled  # and never asks again
        narrower.update()
        assert len(executor.requests) == 3  # no further requests

    def test_decline_while_still_full_just_disables(self):
        narrower, compiled, executor = self._narrower([False])
        compiled.next_target = frozenset({"#a"})
        narrower.update()
        # Never narrowed, so nothing to restore: one request, disabled.
        assert executor.requests == [frozenset({"#a"})]
        assert narrower.active == narrower.full
        assert not narrower.enabled
