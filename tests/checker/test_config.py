"""RunnerConfig validation: misconfigured campaigns fail fast."""

import pytest

from repro.checker import RunnerConfig


class TestDefaults:
    def test_defaults_are_valid(self):
        config = RunnerConfig()
        assert config.tests == 20
        assert config.shrink is True

    def test_explicit_values_kept(self):
        config = RunnerConfig(tests=3, scheduled_actions=7, seed=9)
        assert (config.tests, config.scheduled_actions, config.seed) == (3, 7, 9)


class TestValidation:
    @pytest.mark.parametrize("tests", [0, -1, -100])
    def test_rejects_non_positive_tests(self, tests):
        with pytest.raises(ValueError, match="tests"):
            RunnerConfig(tests=tests)

    @pytest.mark.parametrize(
        "field",
        ["scheduled_actions", "demand_allowance", "max_states"],
    )
    def test_rejects_negative_budgets(self, field):
        with pytest.raises(ValueError, match=field):
            RunnerConfig(**{field: -1})

    @pytest.mark.parametrize(
        "field",
        ["decision_latency_ms", "settle_ms", "idle_wait_ms"],
    )
    def test_rejects_negative_latencies(self, field):
        with pytest.raises(ValueError, match=field):
            RunnerConfig(**{field: -0.5})

    def test_zero_budgets_allowed(self):
        # A zero-action campaign is odd but legal: it observes only the
        # initial state (used by some protocol tests).
        config = RunnerConfig(scheduled_actions=0, demand_allowance=0,
                              decision_latency_ms=0.0, settle_ms=0.0)
        assert config.scheduled_actions == 0
