"""The checker's test loop: budgets, demand extension, forcing, seeds."""

import pytest

from repro.apps.eggtimer import egg_timer_app
from repro.checker import Runner, RunnerConfig
from repro.dom import Element
from repro.executors import DomExecutor
from repro.quickltl import Verdict
from repro.specs import load_eggtimer_spec
from repro.specstrom import load_module


def counter_app(page):
    doc = page.document
    label = Element("span", {"id": "value"}, text="0")
    button = Element("button", {"id": "inc"}, text="+")
    doc.root.append_child(label)
    doc.root.append_child(button)
    state = {"n": 0}

    def on_click(_event):
        state["n"] += 1
        label.text = str(state["n"])

    doc.add_event_listener(button, "click", on_click)
    return state


COUNTER_SPEC = """
let ~value = parseInt(`#value`.text);
action inc! = click!(`#inc`);
let ~incremented { let old = value; next (inc! in happened && value == old + 1) };
let ~safety = loaded? in happened && value == 0 && always{20} incremented;
let ~reachesFive = eventually{20} (value == 5);
check safety, reachesFive;
"""


@pytest.fixture(scope="module")
def counter_module():
    return load_module(COUNTER_SPEC)


def run_counter(check_name, module, **kwargs):
    spec = module.check_named(check_name)
    defaults = dict(tests=3, scheduled_actions=10, demand_allowance=15,
                    seed=1, shrink=False)
    defaults.update(kwargs)
    return Runner(spec, lambda: DomExecutor(counter_app),
                  RunnerConfig(**defaults)).run()


class TestBasicCampaigns:
    def test_safety_passes(self, counter_module):
        result = run_counter("safety", counter_module)
        assert result.passed
        assert result.tests_run == 3

    def test_liveness_witnessed_definitively(self, counter_module):
        result = run_counter("reachesFive", counter_module, tests=1,
                             scheduled_actions=30)
        assert result.results[0].verdict is Verdict.DEFINITELY_TRUE
        assert not result.results[0].forced

    def test_demand_extends_run_past_schedule(self, counter_module):
        """The safety property's transition obligations demand a next
        state at every step, so the run extends into the allowance."""
        result = run_counter("safety", counter_module, tests=1,
                             scheduled_actions=5, demand_allowance=7)
        test = result.results[0]
        assert test.actions_taken == 12  # schedule + full allowance
        assert test.forced
        assert test.verdict is Verdict.PROBABLY_TRUE

    def test_liveness_unfulfilled_is_forced_false(self, counter_module):
        """reachesFive with too few actions: eventually{20} keeps
        demanding; once the budget is gone the polarity rule reports
        probably-false."""
        result = run_counter("reachesFive", counter_module, tests=1,
                             scheduled_actions=2, demand_allowance=1)
        test = result.results[0]
        assert test.verdict is Verdict.PROBABLY_FALSE
        assert test.forced
        assert not result.passed


class TestDeterminism:
    def test_same_seed_same_outcome(self, counter_module):
        a = run_counter("safety", counter_module, seed=99)
        b = run_counter("safety", counter_module, seed=99)
        assert [t.actions_taken for t in a.results] == [
            t.actions_taken for t in b.results
        ]
        assert [(n, r) for n, r in a.results[0].actions] == [
            (n, r) for n, r in b.results[0].actions
        ]

    def test_different_tests_use_different_randomness(self, counter_module):
        result = run_counter("reachesFive", counter_module, tests=2,
                             scheduled_actions=8)
        # both tests ran (no stop) and produced traces independently
        assert result.tests_run == 2


class TestFailureHandling:
    def broken_counter(self, page):
        doc = page.document
        label = Element("span", {"id": "value"}, text="0")
        button = Element("button", {"id": "inc"}, text="+")
        doc.root.append_child(label)
        doc.root.append_child(button)
        state = {"n": 0}

        def on_click(_event):
            state["n"] += 2  # off by one
            label.text = str(state["n"])

        doc.add_event_listener(button, "click", on_click)
        return state

    def test_counterexample_recorded_and_shrunk(self, counter_module):
        spec = counter_module.check_named("safety")
        result = Runner(
            spec,
            lambda: DomExecutor(self.broken_counter),
            RunnerConfig(tests=5, scheduled_actions=10, seed=3, shrink=True),
        ).run()
        assert not result.passed
        assert result.counterexample is not None
        assert result.counterexample.verdict is Verdict.DEFINITELY_FALSE
        assert result.shrunk_counterexample is not None
        assert len(result.shrunk_counterexample.actions) == 1

    def test_stop_on_failure(self, counter_module):
        spec = counter_module.check_named("safety")
        result = Runner(
            spec,
            lambda: DomExecutor(self.broken_counter),
            RunnerConfig(tests=10, scheduled_actions=10, seed=3,
                         shrink=False, stop_on_failure=True),
        ).run()
        assert result.tests_run == 1

    def test_continue_after_failure(self, counter_module):
        spec = counter_module.check_named("safety")
        result = Runner(
            spec,
            lambda: DomExecutor(self.broken_counter),
            RunnerConfig(tests=4, scheduled_actions=10, seed=3,
                         shrink=False, stop_on_failure=False),
        ).run()
        assert result.tests_run == 4
        assert all(t.failed for t in result.results)


class TestStalling:
    def dead_app(self, page):
        page.document.root.append_child(Element("span", {"id": "value"}, text="0"))
        return {}

    def test_no_enabled_actions_stalls_gracefully(self):
        module = load_module(
            """
            let ~value = parseInt(`#value`.text);
            action poke! = click!(`#missing`);
            let ~prop = always{5} (value == 0);
            check prop;
            """
        )
        result = Runner(
            module.checks[0],
            lambda: DomExecutor(self.dead_app),
            RunnerConfig(tests=1, scheduled_actions=5, seed=0, shrink=False),
        ).run()
        test = result.results[0]
        assert test.stall_reason is not None
        assert test.verdict is Verdict.PROBABLY_TRUE  # forced, no violation


class TestEggTimerEndToEnd:
    """The runner drives timeouts and events on the egg timer."""

    def test_wait_actions_collect_tick_events(self):
        module = load_eggtimer_spec()
        spec = module.check_named("safety")
        result = Runner(
            spec,
            lambda: DomExecutor(egg_timer_app()),
            RunnerConfig(tests=2, scheduled_actions=20, demand_allowance=10,
                         seed=7, shrink=False),
        ).run()
        assert result.passed
        # Every test observed more states than actions: tick events count.
        for test in result.results:
            assert test.states_observed > test.actions_taken


class TestReplayAccounting:
    """Runner.replay must report only the actions it actually
    dispatched: the verdict can turn definitive mid-sequence."""

    def _failing_runner(self):
        spec = load_eggtimer_spec().check_named("safety")
        return Runner(
            spec,
            lambda: DomExecutor(egg_timer_app(decrement=2)),
            RunnerConfig(tests=5, scheduled_actions=20, demand_allowance=10,
                         seed=3, shrink=True),
        )

    def test_replay_counts_only_dispatched_actions(self):
        runner = self._failing_runner()
        campaign = runner.run()
        assert not campaign.passed
        shrunk = campaign.shrunk_counterexample
        assert shrunk is not None
        # Pad the failing sequence with actions that can never run: the
        # verdict is already definitive when the replay reaches them.
        padded = list(shrunk.actions) + list(shrunk.actions) * 3
        replayed = runner.replay(padded)
        assert replayed is not None
        assert replayed.failed
        assert replayed.actions_taken == len(shrunk.actions)
        assert replayed.actions_taken < len(padded)
        # The dispatched count agrees with the observed trace: no
        # phantom actions inflate the reporter's statistics.
        acted = sum(1 for entry in replayed.trace if entry.kind == "acted")
        assert acted == replayed.actions_taken

    def test_full_replay_still_counts_everything(self):
        runner = self._failing_runner()
        campaign = runner.run()
        shrunk = campaign.shrunk_counterexample
        prefix = list(shrunk.actions)[:-1]  # stop short of the failure
        replayed = runner.replay(prefix)
        assert replayed is not None
        assert replayed.actions_taken == len(prefix)


class TestWatchedEventsCache:
    """Event definitions are state- and RNG-independent: one evaluation
    per campaign, not one per test."""

    def test_evaluated_exactly_once_per_campaign(self, monkeypatch):
        from repro.api import SerialEngine

        spec = load_eggtimer_spec().check_named("safety")  # has tick?
        runner = Runner(
            spec,
            lambda: DomExecutor(egg_timer_app()),
            RunnerConfig(tests=3, scheduled_actions=8, demand_allowance=5,
                         seed=1, shrink=False),
        )
        calls = []
        original = Runner._evaluate_watched_events

        def counting(self):
            calls.append(1)
            return original(self)

        monkeypatch.setattr(Runner, "_evaluate_watched_events", counting)
        result = SerialEngine().run(runner)
        assert result.tests_run == 3
        assert len(calls) == 1

    def test_cache_returns_the_same_tuple(self):
        spec = load_eggtimer_spec().check_named("safety")
        runner = Runner(spec, lambda: DomExecutor(egg_timer_app()))
        assert runner.watched_events() is runner.watched_events()


class TestLeaseExceptionSafety:
    def test_mid_test_error_stops_the_executor_instead_of_parking_it(self):
        """An executor that blows up mid-test must not be checked in
        warm (its session state is unknown) and must be stopped."""
        from repro.api import ExecutorCache
        from repro.executors.base import ActionFailed

        stopped = []

        class BlowingExecutor(DomExecutor):
            def act(self, act):
                raise ActionFailed("target vanished")

            def stop(self):
                stopped.append(self)
                super().stop()

        spec = load_eggtimer_spec().check_named("safety")
        runner = Runner(
            spec,
            lambda: BlowingExecutor(egg_timer_app()),
            RunnerConfig(tests=1, scheduled_actions=5, demand_allowance=3,
                         seed=1, shrink=False),
        )
        cache = ExecutorCache()
        import random as random_module

        with pytest.raises(ActionFailed):
            runner.run_single_test(
                random_module.Random("x"),
                lease=cache.lease(runner.executor_factory),
            )
        assert len(stopped) == 1
        assert len(cache) == 0  # nothing parked warm
