"""End-to-end: the formal TodoMVC specification on sample implementations."""

import pytest

from repro.apps.todomvc import implementation_named
from repro.checker import Runner, RunnerConfig
from repro.executors import DomExecutor
from repro.specs import load_todomvc_spec


@pytest.fixture(scope="module")
def safety():
    return load_todomvc_spec(default_subscript=60).check_named("safety")


def audit(safety, name, tests=12, seed=2):
    impl = implementation_named(name)
    config = RunnerConfig(tests=tests, scheduled_actions=60,
                          demand_allowance=20, seed=seed, shrink=True)
    return impl, Runner(
        safety, lambda: DomExecutor(impl.app_factory()), config
    ).run()


class TestPassingImplementations:
    @pytest.mark.parametrize("name", ["vue", "react", "binding-scala"])
    def test_passes(self, safety, name):
        impl, result = audit(safety, name, tests=4)
        assert result.passed
        assert not impl.should_fail


class TestFailingImplementations:
    @pytest.mark.parametrize(
        "name",
        [
            "angular2_es2015",  # P1
            "dijon",            # P2
            "duel",             # P4
            "polymer",          # P6
            "angularjs",        # P7
            "vanillajs",        # P8
            "dojo",             # P9
            "jquery",           # P10
            "ractive",          # P12
            "canjs",            # P13
            "angular-dart",     # P14
        ],
    )
    def test_fails_with_counterexample(self, safety, name):
        impl, result = audit(safety, name)
        assert not result.passed
        assert impl.should_fail
        assert result.shrunk_counterexample is not None
        assert len(result.shrunk_counterexample.actions) <= len(
            result.counterexample.actions
        )

    def test_vanilla_es6_dual_fault(self, safety):
        impl, result = audit(safety, "vanilla-es6")
        assert not result.passed
        assert impl.fault_numbers == (8, 3)


class TestCounterexampleQuality:
    def test_pluralisation_shrinks_small(self, safety):
        """P6 needs exactly one item; the shrunk trace should be short."""
        _, result = audit(safety, "polymer")
        assert len(result.shrunk_counterexample.actions) <= 4

    def test_transient_empty_counterexample_mentions_add(self, safety):
        _, result = audit(safety, "angular-dart")
        names = [n for n, _ in result.shrunk_counterexample.actions]
        assert "addNew!" in names
