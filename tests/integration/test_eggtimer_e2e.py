"""End-to-end: the Figure 8 egg-timer specification against live apps."""

import pytest

from repro.apps.eggtimer import egg_timer_app
from repro.checker import Runner, RunnerConfig
from repro.executors import DomExecutor
from repro.quickltl import Verdict
from repro.specs import load_eggtimer_spec


@pytest.fixture(scope="module")
def module():
    return load_eggtimer_spec()


def campaign(check, app_factory, **kwargs):
    defaults = dict(tests=3, scheduled_actions=25, demand_allowance=10,
                    seed=7, shrink=True)
    defaults.update(kwargs)
    return Runner(check, lambda: DomExecutor(app_factory),
                  RunnerConfig(**defaults)).run()


class TestSafety:
    def test_correct_timer_passes(self, module):
        result = campaign(module.check_named("safety"), egg_timer_app())
        assert result.passed

    def test_reset_on_stop_variant_also_passes(self, module):
        """The paper: the spec 'intentionally applies both to timers that
        reset when stopped and to timers that pause when stopped'."""
        result = campaign(
            module.check_named("safety"), egg_timer_app(pause_on_stop=False)
        )
        assert result.passed

    def test_double_decrement_caught(self, module):
        result = campaign(
            module.check_named("safety"), egg_timer_app(decrement=2),
            tests=5, scheduled_actions=20,
        )
        assert not result.passed
        assert result.counterexample.verdict is Verdict.DEFINITELY_FALSE
        assert [n for n, _ in result.shrunk_counterexample.actions] == [
            "start!", "wait!",
        ]

    def test_frozen_display_caught(self, module):
        result = campaign(
            module.check_named("safety"), egg_timer_app(stuck_at=178),
            tests=5, scheduled_actions=20,
        )
        assert not result.passed


class TestLiveness:
    def test_timer_eventually_stops(self, module):
        result = campaign(
            module.check_named("liveness"), egg_timer_app(initial_seconds=8),
            tests=2, scheduled_actions=15, demand_allowance=40,
        )
        assert result.passed

    def test_time_up_with_restricted_actions(self, module):
        """check timeUp with start! wait! tick? -- excluding stop! is the
        paper's trick to make the strong liveness property checkable."""
        time_up = module.check_named("timeUp")
        assert sorted(a.name for a in time_up.actions) == ["start!", "wait!"]
        result = campaign(
            time_up, egg_timer_app(initial_seconds=8),
            tests=2, scheduled_actions=12, demand_allowance=40,
        )
        assert result.passed

    def test_time_up_fails_on_timer_that_cannot_finish(self, module):
        """A frozen-at-5 display never shows zero: the eventually
        obligation is never fulfilled and the forced verdict is
        presumptively false."""
        result = campaign(
            module.check_named("timeUp"),
            egg_timer_app(initial_seconds=8, stuck_at=5),
            tests=1, scheduled_actions=12, demand_allowance=40,
        )
        assert not result.passed
        assert result.results[-1].verdict is Verdict.PROBABLY_FALSE


class TestTraceShape:
    def test_tick_events_appear_in_traces(self, module):
        result = campaign(module.check_named("safety"), egg_timer_app(),
                          tests=1, shrink=False)
        trace = result.results[0].trace
        assert any("tick?" in entry.happened for entry in trace)
        assert any("wait!" in entry.happened for entry in trace)
        assert trace[0].happened == ("loaded?",)
