"""The bundled .strom specification files: structure and elaboration."""

import pytest

from repro.quickltl import Always
from repro.specs import load_eggtimer_spec, load_todomvc_spec, load_spec, spec_path


class TestSpecPath:
    def test_known_specs_resolve(self):
        assert spec_path("eggtimer.strom").endswith("eggtimer.strom")
        assert spec_path("todomvc.strom").endswith("todomvc.strom")

    def test_unknown_spec_rejected(self):
        with pytest.raises(FileNotFoundError):
            spec_path("nope.strom")

    def test_load_spec_generic(self):
        module = load_spec("eggtimer.strom")
        assert module.checks


class TestEggTimerSpec:
    def test_structure(self):
        module = load_eggtimer_spec()
        assert [c.name for c in module.checks] == ["safety", "liveness", "timeUp"]
        assert sorted(module.actions) == ["start!", "stop!", "tick?", "wait!"]
        assert module.actions["wait!"].timeout_ms == 1000.0

    def test_dependencies_are_the_two_widgets(self):
        module = load_eggtimer_spec()
        for check in module.checks:
            assert check.dependencies == frozenset({"#toggle", "#remaining"})

    def test_time_up_restricts_actions(self):
        module = load_eggtimer_spec()
        time_up = module.check_named("timeUp")
        assert sorted(a.name for a in time_up.actions) == ["start!", "wait!"]
        assert [e.name for e in time_up.events] == ["tick?"]


class TestTodoMvcSpec:
    def test_structure(self):
        module = load_todomvc_spec()
        names = [c.name for c in module.checks]
        assert names == ["safety", "persistence"]

    def test_safety_excludes_reload(self):
        module = load_todomvc_spec()
        safety = module.check_named("safety")
        assert "reloadPage!" not in [a.name for a in safety.actions]
        assert "render?" in [e.name for e in safety.events]

    def test_persistence_includes_reload(self):
        module = load_todomvc_spec()
        persistence = module.check_named("persistence")
        assert "reloadPage!" in [a.name for a in persistence.actions]

    def test_fourteen_user_actions_defined(self):
        module = load_todomvc_spec()
        user_actions = [a for a in module.actions.values() if a.is_user_action]
        assert len(user_actions) == 15  # 14 interactions + reloadPage!

    def test_dependency_set_covers_the_whole_ui(self):
        module = load_todomvc_spec()
        deps = module.check_named("safety").dependencies
        for selector in (".new-todo", ".todo-list li", ".filters a",
                         ".toggle-all", ".todo-count", ".clear-completed"):
            assert selector in deps

    def test_default_subscript_threads_into_the_always(self):
        module = load_todomvc_spec(default_subscript=77)
        from tests.specstrom.helpers import element, snapshot

        deps = module.check_named("safety").dependencies
        queries = {css: [] for css in deps}
        # A fresh page: empty list but the input present, so the
        # property's initial conjunct holds and the always survives.
        queries[".new-todo"] = [element(tag="input", value="")]
        state = snapshot(queries, happened=["loaded?"])
        forced = module.check_named("safety").formula.force(state)
        always_nodes = _find_always(forced)
        assert 77 in {node.n for node in always_nodes}


def _find_always(formula):
    from repro.quickltl import And, Or, Not, NextReq, NextStrong, NextWeak
    from repro.quickltl import Always, Eventually, Until, Release

    found = []
    stack = [formula]
    while stack:
        node = stack.pop()
        if isinstance(node, Always):
            found.append(node)
            stack.append(node.body)
        elif isinstance(node, (Eventually,)):
            stack.append(node.body)
        elif isinstance(node, (And, Or, Until, Release)):
            stack.append(node.left)
            stack.append(node.right)
        elif isinstance(node, (Not, NextReq, NextStrong, NextWeak)):
            stack.append(node.operand)
    return found
