"""The async executor protocol: adapter, latency injection, coercion.

``AsyncExecutor`` is the awaitable mirror of ``Executor``; these tests
pin the two shipped wrappers:

* ``SyncExecutorAdapter`` -- every protocol call delegates to the
  wrapped synchronous executor (through the loop's thread pool) with
  identical arguments and return values;
* ``LatencyExecutor`` -- injects *deterministic wall-clock* round-trip
  delay while leaving virtual time, the trace, and the test's RNG
  untouched; ``latency_ms=0`` is a pure pass-through.
"""

import asyncio
import time

import pytest

from repro.apps.eggtimer import egg_timer_app
from repro.executors import (
    AsyncExecutor,
    DomExecutor,
    LatencyExecutor,
    SyncExecutorAdapter,
    ensure_async_executor,
)
from repro.protocol.messages import Act, Narrow, Reset, Start


class RecordingSync:
    """A synchronous executor stub that logs every call."""

    def __init__(self):
        self.calls = []
        self.version = 3
        self.now_ms = 120.0

    def start(self, start):
        self.calls.append(("start", start))

    def drain(self):
        self.calls.append(("drain",))
        return ["m1", "m2"]

    def act(self, act):
        self.calls.append(("act", act))
        return True

    def pass_time(self, delta_ms):
        self.calls.append(("pass_time", delta_ms))

    def await_events(self, timeout_ms):
        self.calls.append(("await_events", timeout_ms))

    def stop(self):
        self.calls.append(("stop",))

    def narrow(self, narrow):
        self.calls.append(("narrow", narrow))
        return True

    def reset(self, reset):
        self.calls.append(("reset", reset))
        return True


def drive(coro):
    return asyncio.run(coro)


class TestSyncExecutorAdapter:
    def test_delegates_every_protocol_call(self):
        inner = RecordingSync()
        adapter = SyncExecutorAdapter(inner)
        start = Start(dependencies=frozenset(), events=())

        async def session():
            await adapter.start(start)
            assert await adapter.drain() == ["m1", "m2"]
            assert await adapter.act("the-act") is True
            await adapter.pass_time(50.0)
            await adapter.await_events(100.0)
            assert await adapter.narrow("the-narrow") is True
            assert await adapter.reset("the-reset") is True
            await adapter.stop()

        drive(session())
        assert [name for name, *_ in inner.calls] == [
            "start", "drain", "act", "pass_time", "await_events",
            "narrow", "reset", "stop",
        ]
        assert adapter.version == 3
        assert adapter.now_ms == 120.0

    def test_missing_narrow_and_reset_decline(self):
        class Bare:
            version = 0
            now_ms = 0.0

            def stop(self):
                pass

        adapter = SyncExecutorAdapter(Bare())

        async def session():
            assert await adapter.narrow(None) is False
            assert await adapter.reset(None) is False

        drive(session())

    def test_stop_nowait_stops_the_inner_executor(self):
        inner = RecordingSync()
        SyncExecutorAdapter(inner).stop_nowait()
        assert inner.calls == [("stop",)]

    def test_recorder_reads_through(self):
        inner = RecordingSync()
        inner.recorder = object()
        assert SyncExecutorAdapter(inner).recorder is inner.recorder

        class NoRecorder:
            version = 0
            now_ms = 0.0

        assert SyncExecutorAdapter(NoRecorder()).recorder is None


class TestLatencyExecutor:
    def test_delay_sequence_is_seed_deterministic(self):
        first = LatencyExecutor(RecordingSync(), latency_ms=5, seed="s")
        second = LatencyExecutor(RecordingSync(), latency_ms=5, seed="s")
        other = LatencyExecutor(RecordingSync(), latency_ms=5, seed="t")
        a = [first.next_delay_ms() for _ in range(16)]
        b = [second.next_delay_ms() for _ in range(16)]
        c = [other.next_delay_ms() for _ in range(16)]
        assert a == b
        assert a != c
        spread = 5 * 0.5
        assert all(5 - spread <= d <= 5 + spread for d in a)

    def test_zero_latency_never_sleeps(self):
        inner = RecordingSync()
        wrapped = LatencyExecutor(inner, latency_ms=0, seed=1)
        assert wrapped.next_delay_ms() == 0.0

        async def session():
            await wrapped.start(Start(dependencies=frozenset(), events=()))
            await wrapped.drain()
            await wrapped.act("a")
            await wrapped.await_events(10.0)

        started = time.perf_counter()
        drive(session())
        assert time.perf_counter() - started < 0.5
        assert [name for name, *_ in inner.calls] == [
            "start", "drain", "act", "await_events",
        ]

    def test_injected_delay_is_wall_clock_only(self):
        inner = RecordingSync()
        wrapped = LatencyExecutor(inner, latency_ms=20, jitter=0.0, seed=1)

        async def session():
            await wrapped.drain()
            await wrapped.drain()

        started = time.perf_counter()
        drive(session())
        elapsed = time.perf_counter() - started
        assert elapsed >= 0.04  # two ~20 ms round-trips actually slept
        # Virtual time is the session's clock, never the wrapper's.
        assert wrapped.now_ms == inner.now_ms == 120.0

    def test_pass_time_and_stop_are_not_wire_calls(self):
        # Virtual-time bookkeeping and teardown draw no delay: the RNG
        # position (the observable) only moves on round-trips.
        wrapped = LatencyExecutor(RecordingSync(), latency_ms=5, seed="x")
        probe = LatencyExecutor(RecordingSync(), latency_ms=5, seed="x")

        async def session():
            await wrapped.pass_time(10.0)
            await wrapped.stop()

        drive(session())
        assert wrapped.next_delay_ms() == probe.next_delay_ms()

    def test_wraps_async_executors_too(self):
        inner = SyncExecutorAdapter(RecordingSync())
        wrapped = LatencyExecutor(inner, latency_ms=0, seed=0)

        async def session():
            assert await wrapped.drain() == ["m1", "m2"]
            assert await wrapped.reset("r") is True

        drive(session())

    def test_stop_nowait_dispatches_by_protocol(self):
        sync_inner = RecordingSync()
        LatencyExecutor(sync_inner, latency_ms=0).stop_nowait()
        assert sync_inner.calls == [("stop",)]
        adapted = RecordingSync()
        LatencyExecutor(
            SyncExecutorAdapter(adapted), latency_ms=0
        ).stop_nowait()
        assert adapted.calls == [("stop",)]

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            LatencyExecutor(RecordingSync(), latency_ms=-1)
        with pytest.raises(ValueError):
            LatencyExecutor(RecordingSync(), jitter=1.5)

    def test_drives_a_real_session(self):
        executor = LatencyExecutor(
            DomExecutor(egg_timer_app()), latency_ms=2, jitter=0.5, seed=9
        )

        async def session():
            await executor.start(Start(dependencies=frozenset(), events=()))
            messages = await executor.drain()
            assert messages  # the initial loaded? event came through
            await executor.stop()

        drive(session())


class TestEnsureAsyncExecutor:
    def test_async_executors_pass_through(self):
        adapter = SyncExecutorAdapter(RecordingSync())
        assert ensure_async_executor(adapter) is adapter
        wrapped = LatencyExecutor(RecordingSync(), latency_ms=0)
        assert ensure_async_executor(wrapped) is wrapped

    def test_sync_executors_are_adapted(self):
        inner = RecordingSync()
        adapted = ensure_async_executor(inner)
        assert isinstance(adapted, SyncExecutorAdapter)
        assert adapted.inner is inner

    def test_protocol_marker(self):
        assert isinstance(SyncExecutorAdapter(RecordingSync()), AsyncExecutor)
        assert not isinstance(RecordingSync(), AsyncExecutor)
