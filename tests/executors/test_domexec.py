"""The DOM executor: snapshots, dependency restriction, gestures."""

import pytest

from repro.dom import Element
from repro.executors import ActionFailed, DomExecutor
from repro.protocol.messages import Act, Start
from repro.specstrom.actions import ResolvedAction


def form_app(page):
    doc = page.document
    doc.root.append_child(Element("input", {"id": "field", "type": "text"}))
    doc.root.append_child(Element("button", {"id": "go"}, text="go"))
    doc.root.append_child(Element("span", {"id": "secret"}, text="hidden dep"))
    hidden = Element("button", {"id": "ghost"}, text="ghost")
    hidden.set_style("display", "none")
    doc.root.append_child(hidden)
    return {}


@pytest.fixture()
def executor():
    ex = DomExecutor(form_app)
    ex.start(Start(frozenset({"#field", "#go"})))
    ex.drain()
    return ex


def act(kind, selector, *args, index=0, version=1):
    return Act(ResolvedAction(kind, selector, index, tuple(args)), "a!", version)


class TestSnapshots:
    def test_only_dependency_selectors_included(self, executor):
        executor.act(act("click", "#go"))
        (message,) = executor.drain()
        assert set(message.state.queries) == {"#field", "#go"}

    def test_snapshot_records_widget_state(self, executor):
        executor.act(act("input", "#field", "hello"))
        (message,) = executor.drain()
        field = message.state.queries["#field"][0]
        assert field.value == "hello"
        assert field.focused

    def test_versions_are_sequential(self, executor):
        executor.act(act("click", "#go", version=1))
        executor.act(act("click", "#go", version=2))
        messages = executor.drain()
        assert [m.state.version for m in messages] == [2, 3]


class TestGestures:
    def test_input_replaces_value(self, executor):
        executor.act(act("input", "#field", "first", version=1))
        executor.act(act("input", "#field", "second", version=2))
        messages = executor.drain()
        assert messages[-1].state.queries["#field"][0].value == "second"

    def test_press_key_focuses_target(self, executor):
        executor.act(act("pressKey", "#field", "Enter"))
        (message,) = executor.drain()
        assert message.state.queries["#field"][0].focused

    def test_clear(self, executor):
        executor.act(act("input", "#field", "text", version=1))
        executor.act(act("clear", "#field", version=2))
        messages = executor.drain()
        assert messages[-1].state.queries["#field"][0].value == ""

    def test_noop_changes_nothing_but_reports(self, executor):
        executor.act(Act(ResolvedAction("noop", None, None, ()), "wait!", 1))
        (message,) = executor.drain()
        assert message.state.happened == ("wait!",)

    def test_reload_reports_loaded_in_happened(self, executor):
        executor.act(Act(ResolvedAction("reload", None, None, ()), "reload!", 1))
        (message,) = executor.drain()
        assert message.state.happened == ("reload!", "loaded?")


class TestFailures:
    def test_unknown_selector_target_fails(self, executor):
        with pytest.raises(ActionFailed):
            executor.act(act("click", "#missing"))

    def test_invisible_target_fails(self, executor):
        with pytest.raises(ActionFailed):
            executor.act(act("click", "#ghost"))

    def test_index_out_of_range_fails(self, executor):
        with pytest.raises(ActionFailed):
            executor.act(act("click", "#go", index=5))

    def test_unknown_primitive_fails(self, executor):
        with pytest.raises(ActionFailed):
            executor.act(act("teleport", "#go"))

    def test_unstarted_executor_rejects_acts(self):
        ex = DomExecutor(form_app)
        with pytest.raises(RuntimeError):
            ex.act(act("click", "#go", version=0))


class TestIndexResolution:
    def test_index_counts_visible_matches_only(self):
        def many_buttons(page):
            doc = page.document
            for i, visible in enumerate([True, False, True]):
                b = Element("button", {"class": "b", "data-n": str(i)})
                if not visible:
                    b.set_style("display", "none")
                doc.root.append_child(b)
            return {}

        ex = DomExecutor(many_buttons)
        ex.start(Start(frozenset({".b"})))
        ex.drain()
        # Index 1 among *visible* matches is the data-n=2 button.
        ex.act(act("click", ".b", index=1))
        (message,) = ex.drain()
        clicked = [
            el for el in message.state.queries[".b"] if el.focused
        ]
        assert clicked and clicked[0].attribute("data-n") == "2"


class TestNarrowing:
    def test_narrow_restricts_subsequent_snapshots(self, executor):
        from repro.protocol.messages import Narrow

        assert executor.narrow(Narrow(frozenset({"#go"}))) is True
        executor.act(act("click", "#go"))
        (message,) = executor.drain()
        assert set(message.state.queries) == {"#go"}

    def test_narrow_intersects_with_the_start_set(self, executor):
        from repro.protocol.messages import Narrow

        # `#secret` exists in the DOM but was never instrumented; a
        # narrow cannot widen the session beyond its Start set.
        executor.narrow(Narrow(frozenset({"#go", "#secret"})))
        executor.act(act("click", "#go"))
        (message,) = executor.drain()
        assert set(message.state.queries) == {"#go"}

    def test_narrow_can_widen_again_up_to_the_start_set(self, executor):
        from repro.protocol.messages import Narrow

        executor.narrow(Narrow(frozenset({"#go"})))
        executor.narrow(Narrow(frozenset({"#go", "#field"})))
        executor.act(act("click", "#go"))
        (message,) = executor.drain()
        assert set(message.state.queries) == {"#field", "#go"}

    def test_narrow_before_start_is_declined(self):
        from repro.protocol.messages import Narrow

        ex = DomExecutor(form_app)
        assert ex.narrow(Narrow(frozenset({"#go"}))) is False

    def test_reset_restores_full_capture(self, executor):
        from repro.protocol.messages import Narrow, Reset

        executor.narrow(Narrow(frozenset({"#go"})))
        assert executor.reset(Reset(frozenset({"#field", "#go"}))) is True
        (loaded,) = executor.drain()
        assert set(loaded.state.queries) == {"#field", "#go"}
