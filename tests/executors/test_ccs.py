"""CCS syntax, SOS semantics and parser."""

import pytest

from repro.executors import (
    CCSDefinitions,
    CCSParseError,
    Choice,
    Nil,
    Parallel,
    Prefix,
    Ref,
    Relabel,
    Restrict,
    TAU,
    enabled_labels,
    parse_ccs,
    parse_definitions,
    transitions,
)
from repro.executors.ccs import complement


class TestComplement:
    def test_name_to_coname(self):
        assert complement("a") == "'a"
        assert complement("'a") == "a"

    def test_tau_has_no_complement(self):
        with pytest.raises(ValueError):
            complement(TAU)


class TestTransitions:
    def test_nil_is_stuck(self):
        assert transitions(Nil()) == []

    def test_prefix(self):
        process = Prefix("a", Nil())
        assert transitions(process) == [("a", Nil())]

    def test_choice_offers_both(self):
        process = Choice(Prefix("a", Nil()), Prefix("b", Nil()))
        assert {label for label, _ in transitions(process)} == {"a", "b"}

    def test_choice_commits(self):
        process = Choice(Prefix("a", Prefix("c", Nil())), Prefix("b", Nil()))
        successors = dict(transitions(process))
        assert successors["a"] == Prefix("c", Nil())
        assert successors["b"] == Nil()

    def test_parallel_interleaves(self):
        process = Parallel(Prefix("a", Nil()), Prefix("b", Nil()))
        labels = [label for label, _ in transitions(process)]
        assert labels.count("a") == 1 and labels.count("b") == 1

    def test_parallel_communicates_via_tau(self):
        process = Parallel(Prefix("a", Nil()), Prefix("'a", Nil()))
        labels = [label for label, _ in transitions(process)]
        assert TAU in labels
        tau_successor = dict(transitions(process))[TAU]
        assert tau_successor == Parallel(Nil(), Nil())

    def test_restriction_blocks_names_and_conames(self):
        process = Restrict(
            Choice(Prefix("a", Nil()), Prefix("b", Nil())), frozenset({"a"})
        )
        assert enabled_labels(process) == ["b"]
        conamed = Restrict(Prefix("'a", Nil()), frozenset({"a"}))
        assert enabled_labels(conamed) == []

    def test_restriction_lets_tau_through(self):
        inner = Parallel(Prefix("a", Nil()), Prefix("'a", Nil()))
        process = Restrict(inner, frozenset({"a"}))
        assert enabled_labels(process) == [TAU]

    def test_relabelling(self):
        process = Relabel(Prefix("a", Nil()), (("b", "a"),))
        assert enabled_labels(process) == ["b"]

    def test_relabelling_preserves_polarity(self):
        process = Relabel(Prefix("'a", Nil()), (("b", "a"),))
        assert enabled_labels(process) == ["'b"]

    def test_recursive_definitions(self):
        defs = CCSDefinitions({"X": Prefix("a", Ref("X"))})
        (label, successor) = transitions(Ref("X"), defs)[0]
        assert label == "a"
        assert successor == Ref("X")

    def test_undefined_reference(self):
        with pytest.raises(KeyError):
            transitions(Ref("Nope"))

    def test_unguarded_recursion_detected(self):
        defs = CCSDefinitions({"X": Choice(Ref("X"), Prefix("a", Nil()))})
        with pytest.raises(RecursionError):
            transitions(Ref("X"), defs)


class TestParser:
    def test_nil(self):
        assert parse_ccs("0") == Nil()

    def test_prefix_chain(self):
        assert parse_ccs("a.b.0") == Prefix("a", Prefix("b", Nil()))

    def test_bare_action_means_prefix_nil(self):
        assert parse_ccs("a") == Prefix("a", Nil())

    def test_coname(self):
        assert parse_ccs("'a.0") == Prefix("'a", Nil())

    def test_choice_and_parallel_precedence(self):
        # '|' binds tighter than '+'
        process = parse_ccs("a.0 + b.0 | c.0")
        assert isinstance(process, Choice)
        assert isinstance(process.right, Parallel)

    def test_parentheses(self):
        process = parse_ccs("(a.0 + b.0) | c.0")
        assert isinstance(process, Parallel)

    def test_restriction(self):
        process = parse_ccs("(a.0 | 'a.0) \\ {a}")
        assert isinstance(process, Restrict)
        assert process.labels == frozenset({"a"})

    def test_relabelling(self):
        process = parse_ccs("a.0 [b/a]")
        assert isinstance(process, Relabel)
        assert process.mapping == (("b", "a"),)

    def test_reference_uppercase(self):
        assert parse_ccs("Machine") == Ref("Machine")

    def test_prefix_then_reference(self):
        assert parse_ccs("a.Machine") == Prefix("a", Ref("Machine"))

    @pytest.mark.parametrize("bad", ["", "a..b", "(a", "a +", "a \\ {", "a [b]", "a @ b"])
    def test_errors(self, bad):
        with pytest.raises(CCSParseError):
            parse_ccs(bad)


class TestDefinitions:
    def test_parse_equations_and_initial(self):
        defs, initial = parse_definitions(
            """
            // a vending machine
            Idle = coin.Choose
            Choose = tea.Idle + coffee.Idle
            Idle
            """
        )
        assert set(defs.equations) == {"Idle", "Choose"}
        assert initial == Ref("Idle")
        assert enabled_labels(initial, defs) == ["coin"]

    def test_lowercase_definition_rejected(self):
        with pytest.raises(CCSParseError):
            parse_definitions("idle = a.0")

    def test_no_initial_is_none(self):
        defs, initial = parse_definitions("X = a.X")
        assert initial is None
