"""The CCS executor behind the standard executor interface."""

import pytest

from repro.executors import CCSExecutor, parse_definitions
from repro.executors.domexec import ActionFailed
from repro.protocol.messages import Acted, Act, Event, Start, Timeout
from repro.specstrom.actions import ResolvedAction


@pytest.fixture()
def vending():
    defs, initial = parse_definitions(
        """
        Idle = coin.Choose
        Choose = tea.Idle + coffee.Idle
        Idle
        """
    )
    executor = CCSExecutor(initial, defs, tau_period_ms=0)
    executor.start(Start(frozenset({"coin", "tea", "coffee"})))
    return executor


def ccs_act(label, version):
    return Act(ResolvedAction("ccs", label, 0, ()), f"{label}!", version)


class TestBasicDriving:
    def test_loaded_event_shows_enabled_labels(self, vending):
        (loaded,) = vending.drain()
        assert isinstance(loaded, Event)
        assert loaded.state.queries["coin"]  # enabled
        assert not loaded.state.queries["tea"]  # not yet

    def test_act_moves_the_process(self, vending):
        vending.drain()
        assert vending.act(ccs_act("coin", 1)) is True
        (acted,) = vending.drain()
        assert isinstance(acted, Acted)
        assert acted.state.queries["tea"] and acted.state.queries["coffee"]
        assert not acted.state.queries["coin"]

    def test_disabled_label_fails(self, vending):
        vending.drain()
        with pytest.raises(ActionFailed):
            vending.act(ccs_act("tea", 1))

    def test_non_ccs_primitive_rejected(self, vending):
        vending.drain()
        with pytest.raises(ActionFailed):
            vending.act(Act(ResolvedAction("click", "#x", 0, ()), "x!", 1))

    def test_stale_version_ignored(self, vending):
        vending.drain()
        vending.act(ccs_act("coin", 1))
        assert vending.act(ccs_act("tea", 1)) is False  # version now 2
        assert vending.recorder.stale_rejections == 1

    def test_await_events_times_out_quietly(self, vending):
        vending.drain()
        vending.await_events(300.0)
        (timeout,) = vending.drain()
        assert isinstance(timeout, Timeout)


class TestTauActivity:
    @pytest.fixture()
    def flaky(self):
        defs, initial = parse_definitions(
            """
            Idle = coin.Busy
            Busy = tau.Idle
            Idle
            """
        )
        executor = CCSExecutor(initial, defs, tau_period_ms=200.0)
        executor.start(Start(frozenset({"coin"})))
        return executor

    def test_tau_fires_on_period_and_reports_event(self, flaky):
        flaky.drain()
        flaky.act(ccs_act("coin", 1))
        flaky.drain()
        flaky.pass_time(250.0)
        messages = flaky.drain()
        assert any(isinstance(m, Event) and m.name == "tau?" for m in messages)
        # Back to Idle: coin is enabled again.
        assert messages[-1].state.queries["coin"]

    def test_tau_makes_requests_stale(self, flaky):
        flaky.drain()
        flaky.act(ccs_act("coin", 1))
        flaky.drain()
        flaky.pass_time(250.0)  # tau fired -> version 3
        assert flaky.act(ccs_act("coin", 2)) is False

    def test_await_events_stops_at_tau(self, flaky):
        flaky.drain()
        flaky.act(ccs_act("coin", 1))
        flaky.drain()
        flaky.await_events(10_000.0)
        messages = flaky.drain()
        assert len(messages) == 1
        assert isinstance(messages[0], Event)
        assert flaky.now_ms == 200.0


class TestNarrowing:
    def test_narrow_restricts_pseudo_selectors(self, vending):
        from repro.protocol.messages import Narrow

        vending.drain()
        assert vending.narrow(Narrow(frozenset({"coin"}))) is True
        vending.act(ccs_act("coin", 1))
        (acted,) = vending.drain()
        assert set(acted.state.queries) == {"coin"}

    def test_start_restores_full_capture(self, vending):
        from repro.protocol.messages import Narrow

        vending.drain()
        vending.narrow(Narrow(frozenset({"coin"})))
        vending.start(Start(frozenset({"coin", "tea", "coffee"})))
        (loaded,) = vending.drain()
        assert set(loaded.state.queries) == {"coin", "tea", "coffee"}
