"""The acceptance criterion: monitor verdicts == offline checker verdicts.

Two flavours: recorded traces from a *real* egg-timer campaign (live
DOM executor, real action scheduling) replayed through the monitor's
full wire path, and the fuzzer's monitor oracle run over a generated
campaign.
"""

import pytest

from repro.apps.eggtimer import egg_timer_app
from repro.checker import Runner, RunnerConfig
from repro.executors import DomExecutor
from repro.fuzz.campaigns import generate_campaign, run_campaign
from repro.fuzz.oracles import monitor_oracle_mismatch
from repro.monitor.replay import monitor_verdicts
from repro.specs import load_eggtimer_spec


@pytest.fixture(scope="module")
def module():
    return load_eggtimer_spec()


def recorded_campaign(check, app_factory, **kwargs):
    # narrow_queries=False records full states: replay equivalence wants
    # the monitor to see exactly what the offline checker saw.
    defaults = dict(tests=3, scheduled_actions=25, demand_allowance=10,
                    seed=7, shrink=False, narrow_queries=False)
    defaults.update(kwargs)
    return Runner(check, lambda: DomExecutor(app_factory),
                  RunnerConfig(**defaults)).run()


class TestOfflineEquivalence:
    @pytest.mark.parametrize("app_kwargs", [
        {},                  # healthy timer: presumptive passes
        {"decrement": 2},    # double decrement: DEFINITELY_FALSE traces
    ])
    def test_monitor_matches_checker_on_real_campaign(
        self, module, app_kwargs
    ):
        check = module.check_named("safety")
        result = recorded_campaign(check, egg_timer_app(**app_kwargs))
        traces = {
            f"test{index:02d}": [entry.state for entry in test.trace]
            for index, test in enumerate(result.results)
        }
        verdicts = monitor_verdicts(check, traces)
        assert set(verdicts) == set(traces)
        for index, test in enumerate(result.results):
            session = verdicts[f"test{index:02d}"]
            assert session.verdict == test.verdict.name, session
            assert session.forced == test.forced, session

    def test_generated_campaign_passes_every_oracle(self):
        """The fifth fuzz leg runs inside run_campaign: a clean generated
        campaign must report no divergence from any oracle, the monitor
        replay included."""
        campaign = generate_campaign(seed=0, index=3)
        outcome = run_campaign(campaign, jobs=2)
        assert outcome.divergences == []
        assert outcome.tests_run > 0

    def test_monitor_oracle_reports_a_doctored_divergence(self, module):
        check = module.check_named("safety")
        result = recorded_campaign(check, egg_timer_app(), tests=1)
        (test,) = result.results
        doctored = type(test)(**{
            **test.__dict__, "forced": not test.forced,
        })
        mismatch = monitor_oracle_mismatch(check, [doctored])
        assert mismatch is not None
        assert "test 0" in mismatch
