"""The deterministic synthetic stream the smoke tests and benches pin."""

import pytest

from repro.monitor.replay import monitor_verdicts
from repro.monitor.synth import main, synth_lines, synth_traces
from repro.specs import load_eggtimer_spec

SAFETY = load_eggtimer_spec().check_named("safety")


class TestDeterminism:
    def test_same_seed_same_stream(self):
        first = list(synth_lines(42, 20, 0.3))
        second = list(synth_lines(42, 20, 0.3))
        assert first == second

    def test_different_seed_different_fault_pattern(self):
        _, faulty_a = synth_traces(1, 40, 0.5)
        _, faulty_b = synth_traces(2, 40, 0.5)
        assert faulty_a != faulty_b


class TestSemantics:
    def test_faulty_sessions_fail_and_healthy_sessions_pass(self):
        traces, faulty = synth_traces(seed=9, sessions=15, fault_rate=0.4)
        assert any(faulty.values()) and not all(faulty.values())
        verdicts = monitor_verdicts(SAFETY, traces)
        for session, is_faulty in faulty.items():
            expected = "DEFINITELY_FALSE" if is_faulty else "PROBABLY_TRUE"
            assert verdicts[session].verdict == expected, session

    def test_ci_pinned_population(self):
        """The monitor-smoke CI job asserts these exact counts."""
        traces, faulty = synth_traces(seed=0, sessions=60, fault_rate=0.2)
        assert sum(faulty.values()) == 6
        verdicts = monitor_verdicts(SAFETY, traces)
        by_name = {}
        for verdict in verdicts.values():
            by_name[verdict.verdict] = by_name.get(verdict.verdict, 0) + 1
        assert by_name == {"DEFINITELY_FALSE": 6, "PROBABLY_TRUE": 54}


class TestCli:
    def test_emits_one_line_per_record(self, capsys):
        assert main(["--seed", "1", "--sessions", "4"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines == list(synth_lines(1, 4, 0.0))

    def test_no_end_omits_end_marks(self, capsys):
        assert main(["--seed", "1", "--sessions", "4", "--no-end"]) == 0
        out = capsys.readouterr().out
        assert '"end"' not in out

    def test_rejects_bad_parameters(self, capsys):
        with pytest.raises(SystemExit):
            main(["--sessions", "0"])
        with pytest.raises(SystemExit):
            main(["--fault-rate", "1.5"])
