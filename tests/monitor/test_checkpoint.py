"""Checkpoint/restore: kill the monitor anywhere, resume losslessly.

The acceptance property: for any split point, (run to the split,
checkpoint, die, restore, run the rest) emits the same verdict stream
and reports the same cumulative totals as one uninterrupted run.
"""

import os

import pytest

from repro.artifact import ArtifactCorruptError, ArtifactFormatError
from repro.monitor import Monitor, read_checkpoint_header, checkpoint_path
from repro.monitor.checkpoint import CHECKPOINT_FILENAME
from repro.monitor.synth import synth_lines
from repro.specs import load_eggtimer_spec

#: Metrics keys that legitimately differ across a process restart
#: (cache warmth, round counts, wall clock).
_RESTART_SENSITIVE = {
    "cohort_steps", "sharing_ratio", "intern_hits", "intern_misses",
    "intern_hit_ratio", "cache_evictions", "cache_trims", "ticks",
    "wall_s", "states_per_s", "max_queue_depth",
}


@pytest.fixture(scope="module")
def check():
    return load_eggtimer_spec().check_named("safety")


@pytest.fixture(scope="module")
def lines():
    return list(synth_lines(sessions=16, seed=11))


def _run(check, stream, restore_dir=None, on_verdict=None):
    monitor = Monitor(check, on_verdict=on_verdict)
    if restore_dir is not None:
        monitor.restore_from(restore_dir)
    report = monitor.run_lines(stream)
    return monitor, report


class TestResumeEquivalence:
    @pytest.mark.parametrize("fraction", [0.25, 0.5, 0.9])
    def test_any_split_point_resumes_to_identical_verdicts(
        self, check, lines, tmp_path, fraction
    ):
        full_verdicts = []
        _, full = _run(check, lines, on_verdict=full_verdicts.append)

        cut = int(len(lines) * fraction)
        directory = str(tmp_path / f"ckpt-{fraction}")
        before = []
        first = Monitor(check, on_verdict=before.append)
        for line in lines[:cut]:
            first.feed_line(line)
        first.checkpoint_to(directory)
        del first  # the "kill"

        after = []
        _, resumed = _run(check, lines[cut:], restore_dir=directory,
                          on_verdict=after.append)

        assert ([v.to_dict() for v in before + after]
                == [v.to_dict() for v in full_verdicts])
        full_d, resumed_d = full.metrics.to_dict(), resumed.metrics.to_dict()
        for key, value in full_d.items():
            if key not in _RESTART_SENSITIVE:
                assert resumed_d[key] == value, key

    def test_restored_sessions_keep_their_residual_progress(
        self, check, lines, tmp_path
    ):
        directory = str(tmp_path / "ckpt")
        first = Monitor(check)
        for line in lines[: len(lines) // 2]:
            first.feed_line(line)
        first.checkpoint_to(directory)
        residuals = {
            e.session_id: e.residual
            for e in first.table.live_sessions()
        }
        assert residuals  # the split leaves sessions open

        second = Monitor(check)
        second.restore_from(directory)
        restored = {
            e.session_id: e.residual
            for e in second.table.live_sessions()
        }
        assert set(restored) == set(residuals)
        # Defers re-intern by closure identity, so a restored residual
        # is a fresh node with the same spine (the verdict-equivalence
        # test above pins the semantics)...
        for session_id, residual in residuals.items():
            assert repr(restored[session_id]) == repr(residual)
        # ...but sharing survives: sessions that shared one interned
        # residual before the checkpoint still share one node after.
        shared_before = {}
        for session_id, residual in residuals.items():
            shared_before.setdefault(id(residual), []).append(session_id)
        for group in shared_before.values():
            ids_after = {id(restored[session_id]) for session_id in group}
            assert len(ids_after) == 1

    def test_late_records_stay_late_across_restore(self, check, tmp_path):
        lines = list(synth_lines(sessions=3, seed=5))
        directory = str(tmp_path / "ckpt")
        first = Monitor(check)
        first.run_lines(lines)  # everything resolves
        first.checkpoint_to(directory)

        second = Monitor(check)
        second.restore_from(directory)
        # Replay one already-resolved session's record: the restored
        # retired ring must classify it late, not open a new session.
        second.feed_line(lines[0])
        second.flush()
        assert second.metrics.late_records == 1
        assert second.metrics.sessions_started == first.metrics.sessions_started


class TestCheckpointContainer:
    def test_header_reads_without_payload_decode(self, check, lines, tmp_path):
        directory = str(tmp_path / "ckpt")
        monitor = Monitor(check)
        for line in lines[:20]:
            monitor.feed_line(line)
        path = monitor.checkpoint_to(directory)
        assert os.path.basename(path) == CHECKPOINT_FILENAME
        header = read_checkpoint_header(path)
        assert header["records_ingested"] == 20
        assert header["property"] == "safety"
        assert header["sessions_live"] == len(monitor.table)

    def test_checkpoint_overwrites_atomically(self, check, lines, tmp_path):
        directory = str(tmp_path / "ckpt")
        monitor = Monitor(check)
        for index, line in enumerate(lines):
            monitor.feed_line(line)
            if index in (5, 15):
                monitor.checkpoint_to(directory)
        header = read_checkpoint_header(checkpoint_path(directory))
        assert header["records_ingested"] == 16  # the latest snapshot
        assert os.listdir(directory) == [CHECKPOINT_FILENAME]  # no tmp junk

    def test_torn_checkpoint_is_a_typed_error(self, check, lines, tmp_path):
        directory = str(tmp_path / "ckpt")
        monitor = Monitor(check)
        for line in lines[:10]:
            monitor.feed_line(line)
        path = monitor.checkpoint_to(directory)
        data = bytearray(open(path, "rb").read())
        data[-1] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(data))
        with pytest.raises(ArtifactCorruptError):
            Monitor(check).restore_from(directory)

    def test_foreign_file_is_a_format_error(self, check, tmp_path):
        directory = str(tmp_path / "ckpt")
        os.makedirs(directory)
        with open(checkpoint_path(directory), "wb") as handle:
            handle.write(b"definitely not a checkpoint")
        with pytest.raises(ArtifactFormatError):
            Monitor(check).restore_from(directory)

    def test_wrong_property_is_rejected(self, check, lines, tmp_path):
        directory = str(tmp_path / "ckpt")
        monitor = Monitor(check)
        for line in lines[:10]:
            monitor.feed_line(line)
        monitor.checkpoint_to(directory)
        other = load_eggtimer_spec().check_named("liveness")
        with pytest.raises(ArtifactFormatError):
            Monitor(other).restore_from(directory)


class TestSuspend:
    def test_suspend_leaves_sessions_open(self, check, lines):
        monitor = Monitor(check)
        cut = len(lines) // 2
        for line in lines[:cut]:
            monitor.feed_line(line)
        report = monitor.suspend()
        assert len(monitor.table) > 0
        assert report.metrics.sessions_live == len(monitor.table)
        assert "inconclusive" not in report.metrics.verdicts

    def test_finish_after_suspend_still_resolves(self, check, lines):
        monitor = Monitor(check)
        for line in lines[: len(lines) // 2]:
            monitor.feed_line(line)
        monitor.suspend()
        report = monitor.finish()
        assert report.metrics.sessions_live == 0
