"""Tests for the online monitoring subsystem (src/repro/monitor)."""
