"""Monitor end-to-end: lifecycles, eviction, EOF, quarantine, errors."""

import pytest

from repro.monitor.records import trace_records
from repro.monitor.replay import interleave_sessions, monitor_verdicts
from repro.monitor.service import Monitor
from repro.monitor.synth import _countdown, synth_traces
from repro.quickltl import Always, Atom
from repro.specs import spec_path
from repro.specstrom import load_module_file
from repro.specstrom.module import CheckSpec


@pytest.fixture(scope="module")
def safety():
    return load_module_file(spec_path("eggtimer.strom")).check_named("safety")


def collect(check, **kwargs):
    """A monitor plus the list its verdicts land in."""
    verdicts = []
    monitor = Monitor(check, on_verdict=verdicts.append, **kwargs)
    return monitor, verdicts


def atom_check(formula):
    """Wrap a bare formula as a minimal CheckSpec."""
    return CheckSpec(
        name="synthetic", formula=formula, actions=[], events=[],
        dependencies=frozenset(),
    )


class TestLifecycles:
    def test_definitive_mid_stream_then_late_records(self, safety):
        monitor, verdicts = collect(safety)
        faulty = _countdown(3, fault_at=2)
        for line in trace_records("f", faulty, end=False):
            monitor.feed_line(line)
        monitor.flush()
        assert [v.disposition for v in verdicts] == ["definitive"]
        assert verdicts[0].verdict == "DEFINITELY_FALSE"
        assert not verdicts[0].forced
        # Anything after the resolution is late: counted, never applied.
        for line in trace_records("f", _countdown(3), end=True):
            monitor.feed_line(line)
        report = monitor.finish()
        assert len(verdicts) == 1
        assert report.metrics.late_records == len(_countdown(3)) + 1
        assert report.metrics.verdicts == {"DEFINITELY_FALSE": 1}

    def test_end_record_forces_demanding_residual(self, safety):
        monitor, verdicts = collect(safety)
        monitor.run_lines(trace_records("h", _countdown(3), end=True))
        (verdict,) = verdicts
        assert verdict.disposition == "ended"
        assert verdict.verdict == "PROBABLY_TRUE"
        assert verdict.forced
        assert verdict.states == len(_countdown(3))

    def test_batched_and_unbatched_verdicts_agree(self, safety):
        traces, _ = synth_traces(seed=3, sessions=12, fault_rate=0.3)
        batched = monitor_verdicts(safety, traces, batch=True)
        naive = monitor_verdicts(safety, traces, batch=False)
        def as_pairs(vs):
            return {
                sid: (v.verdict, v.forced, v.disposition)
                for sid, v in vs.items()
            }

        assert as_pairs(batched) == as_pairs(naive)

    def test_interleaving_does_not_change_verdicts(self, safety):
        traces, _ = synth_traces(seed=5, sessions=9, fault_rate=0.4)
        encoded = {
            sid: trace_records(sid, trace) for sid, trace in traces.items()
        }
        interleaved = monitor_verdicts(safety, traces)
        monitor, verdicts = collect(safety)
        # Sequential schedule: each session completes before the next.
        monitor.run_lines(
            line for lines in encoded.values() for line in lines
        )
        sequential = {v.session_id: v for v in verdicts}
        assert {s: v.verdict for s, v in sequential.items()} == {
            s: v.verdict for s, v in interleaved.items()
        }


class TestEviction:
    def test_lru_cap_bounds_live_sessions(self, safety):
        cap = 8
        monitor, verdicts = collect(
            safety, max_sessions=cap, batch_size=1
        )
        traces, _ = synth_traces(seed=0, sessions=50, fault_rate=0.0)
        encoded = {
            sid: trace_records(sid, trace, end=False)
            for sid, trace in traces.items()
        }
        for line in interleave_sessions(encoded):
            monitor.feed_line(line)
            assert len(monitor.table) <= cap
        report = monitor.finish()
        metrics = report.metrics
        assert metrics.sessions_started == 50
        assert metrics.evicted_lru == 42
        assert metrics.sessions_live == 0
        # Every session gets an explicit disposition, never silence.
        assert len(verdicts) == 50
        assert metrics.verdicts == {"inconclusive": 50}
        evicted = [v for v in verdicts if v.reason == "evicted:lru"]
        assert len(evicted) == 42
        assert all(v.disposition == "inconclusive" for v in evicted)

    def test_idle_ttl_evicts_with_injected_clock(self, safety):
        now = [0.0]
        monitor, verdicts = collect(
            safety, idle_ttl_s=30.0, clock=lambda: now[0]
        )
        quiet, chatty = _countdown(3), _countdown(4, pause_after=2)
        monitor.feed_line(trace_records("quiet", quiet[:2], end=False)[0])
        monitor.flush()
        now[0] = 20.0
        monitor.feed_line(trace_records("chatty", chatty[:2], end=False)[0])
        monitor.flush()
        assert verdicts == []
        now[0] = 35.0  # quiet idle for 35s, chatty for 15s
        monitor.flush()
        assert [v.session_id for v in verdicts] == ["quiet"]
        assert verdicts[0].disposition == "inconclusive"
        assert verdicts[0].reason == "evicted:idle"
        assert monitor.metrics.evicted_idle == 1
        assert "chatty" in monitor.table


class TestEof:
    def test_eof_defaults_to_inconclusive(self, safety):
        monitor, verdicts = collect(safety)
        report = monitor.run_lines(
            trace_records("h", _countdown(3), end=False)
        )
        (verdict,) = verdicts
        assert verdict.disposition == "inconclusive"
        assert verdict.reason == "eof"
        assert verdict.verdict is None
        assert report.metrics.verdicts == {"inconclusive": 1}

    def test_resolve_at_eof_forces_like_an_end_record(self, safety):
        monitor, verdicts = collect(safety, resolve_at_eof=True)
        monitor.run_lines(trace_records("h", _countdown(3), end=False))
        (verdict,) = verdicts
        assert verdict.disposition == "ended"
        assert verdict.reason == "eof"
        assert verdict.verdict == "PROBABLY_TRUE"
        assert verdict.forced

    def test_finish_is_idempotent(self, safety):
        monitor, verdicts = collect(safety)
        monitor.run_lines(trace_records("h", _countdown(2), end=True))
        monitor.finish()
        assert len(verdicts) == 1

    def test_late_record_after_eof_is_attributed_to_eof(self, safety):
        # An EOF-inconclusive session was never "finished"; the retired
        # ring must say "eof" so a record trickling in afterwards is a
        # late record of an EOF-drained session, not of a completed one.
        monitor, verdicts = collect(safety)
        monitor.run_lines(trace_records("h", _countdown(3), end=False))
        assert verdicts[0].disposition == "inconclusive"
        assert monitor.table.retired_reason("h") == "eof"
        late = trace_records("h", _countdown(1), end=False)[0]
        monitor.feed_line(late)
        monitor.flush()
        assert monitor.metrics.late_records == 1
        assert len(verdicts) == 1  # late record resurrects nothing


class TestQuarantine:
    def test_malformed_lines_quarantine_and_fail_ok(self, safety):
        monitor, verdicts = collect(safety)
        lines = list(trace_records("h", _countdown(2), end=True))
        lines.insert(1, "{torn json")
        lines.insert(3, '{"state": {}}')
        report = monitor.run_lines(lines)
        assert not report.ok
        assert report.metrics.malformed_records == 2
        assert [line for line, _err in report.quarantine] == [
            "{torn json", '{"state": {}}'
        ]
        # The well-formed frames around the garbage still progress.
        assert [v.verdict for v in verdicts] == ["PROBABLY_TRUE"]

    def test_quarantine_samples_are_capped(self, safety):
        monitor, _ = collect(safety)
        report = monitor.run_lines("garbage" for _ in range(30))
        assert report.metrics.malformed_records == 30
        assert len(report.quarantine) == 20


class TestErrors:
    def test_progression_error_quarantines_only_that_session(self):
        def reads_x(state):
            return state.queries["#x"][0].text == "on"

        check = atom_check(Always(5, Atom("reads-x", reads_x)))
        monitor, verdicts = collect(check)
        from repro.monitor.synth import timer_state
        from repro.specstrom.state import ElementSnapshot, StateSnapshot
        with_x = StateSnapshot(
            queries={"#x": (ElementSnapshot(tag="i", text="on"),)},
        )
        without_x = timer_state(3, False, ("loaded?",))  # no "#x" selector
        lines = list(interleave_sessions({
            "good": trace_records("good", [with_x, with_x]),
            "bad": trace_records("bad", [without_x]),
        }))
        report = monitor.run_lines(lines)
        by_session = {v.session_id: v for v in verdicts}
        assert by_session["bad"].disposition == "error"
        assert "KeyError" in by_session["bad"].reason
        assert by_session["good"].disposition == "ended"
        assert by_session["good"].verdict == "PROBABLY_TRUE"
        assert report.metrics.sessions_errored == 1
        assert not report.ok


class TestBoundedCaches:
    def test_long_stream_stays_within_cache_bound(self, safety):
        """Satellite regression: a tiny cache cap over a long stream must
        trim (counted) without changing any verdict."""
        traces, faulty = synth_traces(seed=11, sessions=120, fault_rate=0.25)
        monitor, verdicts = collect(safety, cache_entries=32)
        encoded = {
            sid: trace_records(sid, trace) for sid, trace in traces.items()
        }
        report = monitor.run_lines(interleave_sessions(encoded))
        assert report.metrics.cache_trims > 0
        assert report.metrics.cache_evictions > 0
        bounded = {v.session_id: v for v in verdicts}
        unbounded = monitor_verdicts(safety, traces)
        assert {s: v.verdict for s, v in bounded.items()} == {
            s: v.verdict for s, v in unbounded.items()
        }
        for session, is_faulty in faulty.items():
            expected = "DEFINITELY_FALSE" if is_faulty else "PROBABLY_TRUE"
            assert bounded[session].verdict == expected


class TestReport:
    def test_report_surfaces_sharing_and_intern_deltas(self, safety):
        traces, _ = synth_traces(seed=2, sessions=30, fault_rate=0.0)
        monitor, _ = collect(safety)
        encoded = {
            sid: trace_records(sid, trace) for sid, trace in traces.items()
        }
        report = monitor.run_lines(interleave_sessions(encoded))
        metrics = report.metrics
        assert report.ok
        assert metrics.sessions_finished == 30
        # 30 sessions over a 3-trajectory palette: heavy cohort sharing.
        assert metrics.sharing_ratio > 0.8
        assert metrics.cohort_steps < metrics.states_applied
        payload = report.to_dict()
        assert payload["event"] == "monitor_end"
        assert payload["metrics"]["verdicts"] == {"PROBABLY_TRUE": 30}
