"""The wire codec: round-trips, canonicalisation, malformed input."""

import json

import pytest
from hypothesis import given

from repro.monitor.records import (
    RecordError,
    encode_record,
    parse_record,
    snapshot_from_json,
    snapshot_to_json,
    state_key,
    trace_records,
)
from repro.specstrom.state import ElementSnapshot, StateSnapshot
from tests.strategies import examples, state_snapshots


class TestSnapshotRoundTrip:
    @given(state=state_snapshots())
    @examples(80)
    def test_json_round_trip_is_identity(self, state):
        assert snapshot_from_json(snapshot_to_json(state)) == state

    @given(state=state_snapshots())
    @examples(60)
    def test_wire_round_trip_through_record(self, state):
        record = parse_record(encode_record("s1", state))
        assert record.session_id == "s1"
        assert record.state == state
        assert not record.end

    def test_attributes_survive_and_sort(self):
        element = ElementSnapshot(
            tag="input", attributes=(("href", "x"), ("id", "a"))
        )
        payload = json.loads(json.dumps(
            {"tag": "input", "attributes": {"id": "a", "href": "x"}}
        ))
        from repro.monitor.records import element_from_json, element_to_json
        assert element_from_json(payload) == element
        assert element_from_json(element_to_json(element)) == element

    def test_defaults_are_omitted_on_the_wire(self):
        from repro.monitor.records import element_to_json
        assert element_to_json(ElementSnapshot(tag="div")) == {"tag": "div"}


class TestStateKey:
    def test_version_and_timestamp_do_not_split_cohorts(self):
        a = StateSnapshot(queries={}, happened=("tick?",), version=1,
                          timestamp_ms=10.0)
        b = StateSnapshot(queries={}, happened=("tick?",), version=9,
                          timestamp_ms=99.5)
        assert state_key(a) == state_key(b)

    def test_happened_matters(self):
        a = StateSnapshot(happened=("tick?",))
        b = StateSnapshot(happened=("stop!",))
        assert state_key(a) != state_key(b)

    def test_wire_formatting_cannot_split_cohorts(self):
        """Explicit defaults, key order and whitespace on the wire must
        map to the same cohort key."""
        verbose = ('{"session": "x", "state": {"happened": ["tick?"], '
                   '"queries": {"#a": [{"enabled": true, "text": "", '
                   '"tag": "div", "visible": true}]}, "version": 3}}')
        terse = ('{"session":"x","state":{"queries":{"#a":[{"tag":"div"}]},'
                 '"happened":["tick?"]}}')
        assert (parse_record(verbose).state_key
                == parse_record(terse).state_key)


class TestParseRecord:
    def test_blank_lines_are_skipped(self):
        assert parse_record("") is None
        assert parse_record("   \n") is None

    def test_integer_session_ids_canonicalise(self):
        record = parse_record('{"session": 17, "end": true}')
        assert record.session_id == "17"

    def test_end_record(self):
        record = parse_record('{"session": "a", "end": true}')
        assert record.end and record.state is None and record.state_key is None

    @pytest.mark.parametrize("line", [
        "not json at all",
        '{"session": "a"',  # torn write
        "[1, 2]",
        '{"state": {}}',  # no session
        '{"session": "", "end": true}',  # empty session
        '{"session": true, "end": true}',  # bool is not an id
        '{"session": "a"}',  # neither state nor end
        '{"session": "a", "end": 1}',
        '{"session": "a", "end": true, "state": {}}',  # both
        '{"session": "a", "state": []}',
        '{"session": "a", "state": {"queries": []}}',
        '{"session": "a", "state": {"queries": {"#x": [{"text": "hi"}]}}}',
        '{"session": "a", "state": {"queries": {"#x": [{"tag": "div", '
        '"checked": "yes"}]}}}',
        '{"session": "a", "state": {"happened": "tick?"}}',
        '{"session": "a", "state": {"happened": [1]}}',
        '{"session": "a", "state": {"version": true}}',
        '{"session": "a", "state": {"timestamp_ms": "soon"}}',
    ])
    def test_malformed_records_raise(self, line):
        with pytest.raises(RecordError):
            parse_record(line)


class TestTraceRecords:
    def test_accepts_snapshots_and_trace_entries(self):
        state = StateSnapshot(happened=("loaded?",))

        class Entry:
            def __init__(self, state):
                self.state = state

        for trace in ([state], [Entry(state)]):
            lines = trace_records("s", trace)
            assert len(lines) == 2
            first = parse_record(lines[0])
            assert first.state == state
            assert parse_record(lines[1]).end

    def test_end_mark_is_optional(self):
        assert trace_records("s", [], end=False) == []
        (only,) = trace_records("s", [], end=True)
        assert parse_record(only).end
