"""The ingest layer: backpressure, EOF semantics, the socket server."""

import io
import socket
import threading
import time

import pytest

from repro.monitor.ingest import (
    IngestQueue,
    SocketIngestServer,
    StreamProducer,
    feed_lines,
)


def drain(queue, max_items=1000):
    lines = []
    while True:
        batch = queue.get_batch(max_items, timeout_s=0.05)
        if batch is None or batch == []:
            return lines
        lines.extend(batch)


class TestQueue:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            IngestQueue(maxsize=0)
        with pytest.raises(ValueError):
            IngestQueue(policy="spill")

    def test_block_policy_stalls_the_producer(self):
        queue = IngestQueue(maxsize=2, policy="block")
        produced = []

        def producer():
            for index in range(5):
                queue.put(f"line-{index}")
                produced.append(index)

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        deadline = time.monotonic() + 2.0
        while len(produced) < 2 and time.monotonic() < deadline:
            time.sleep(0.01)
        time.sleep(0.05)  # give the producer a chance to (wrongly) run on
        assert len(produced) <= 3  # at most maxsize in queue + 1 in flight
        # Draining releases the producer; nothing is lost.
        lines = []
        while len(lines) < 5:
            batch = queue.get_batch(10, timeout_s=1.0)
            assert batch is not None
            lines.extend(batch)
        thread.join(timeout=2.0)
        assert not thread.is_alive()
        assert lines == [f"line-{i}" for i in range(5)]
        assert queue.dropped == 0

    def test_drop_policy_sheds_and_counts(self):
        queue = IngestQueue(maxsize=3, policy="drop")
        fed, dropped = feed_lines([f"l{i}" for i in range(10)], queue)
        assert (fed, dropped) == (3, 7)
        assert queue.dropped == 7
        assert queue.depth() == 3
        queue.close()
        assert drain(queue) == ["l0", "l1", "l2"]

    def test_get_batch_timeout_returns_empty_list(self):
        queue = IngestQueue()
        started = time.monotonic()
        assert queue.get_batch(10, timeout_s=0.05) == []
        assert time.monotonic() - started < 1.0

    def test_close_drains_then_returns_none(self):
        queue = IngestQueue()
        queue.put("a")
        queue.put("b")
        queue.close()
        assert queue.get_batch(1, timeout_s=0.1) == ["a"]
        assert queue.get_batch(10, timeout_s=0.1) == ["b"]
        assert queue.get_batch(10, timeout_s=0.1) is None

    def test_put_on_closed_queue_counts_as_drop(self):
        queue = IngestQueue()
        queue.close()
        assert not queue.put("late")
        assert queue.dropped == 1
        assert queue.depth() == 0

    def test_get_batch_honours_the_deadline_across_wakeups(self):
        # A notify that delivers no line (someone else won the race)
        # must resume waiting for the *remaining* time, not restart or
        # give up early.
        queue = IngestQueue()

        def spurious_notify():
            for _ in range(3):
                time.sleep(0.02)
                with queue._lock:
                    queue._not_empty.notify_all()

        thread = threading.Thread(target=spurious_notify, daemon=True)
        started = time.monotonic()
        thread.start()
        assert queue.get_batch(10, timeout_s=0.25) == []
        elapsed = time.monotonic() - started
        thread.join(timeout=2.0)
        assert elapsed >= 0.25  # the empty notifies did not fake a timeout

    def test_get_batch_without_timeout_blocks_through_empty_wakeups(self):
        # timeout_s=None promises to block until a real line or close;
        # a spurious wakeup must not surface as a premature [].
        queue = IngestQueue()
        results = []

        def consumer():
            results.append(queue.get_batch(10, timeout_s=None))

        thread = threading.Thread(target=consumer, daemon=True)
        thread.start()
        time.sleep(0.05)
        with queue._lock:
            queue._not_empty.notify_all()  # spurious: no line, no close
        time.sleep(0.1)
        assert not results  # still blocked, as promised
        queue.put("real")
        thread.join(timeout=2.0)
        assert results == [["real"]]

    def test_multi_consumer_batches_partition_the_stream(self):
        # The shard dispatcher makes a second consumer routine: no line
        # may be lost or duplicated, and a losing consumer under
        # timeout_s=None must keep blocking instead of returning [].
        queue = IngestQueue(maxsize=64)
        total = 2000
        received = []
        lock = threading.Lock()

        def consumer():
            while True:
                batch = queue.get_batch(7, timeout_s=None)
                if batch is None:
                    return
                assert batch != []  # None-timeout never fakes a timeout
                with lock:
                    received.extend(batch)

        consumers = [
            threading.Thread(target=consumer, daemon=True) for _ in range(4)
        ]
        for thread in consumers:
            thread.start()
        for index in range(total):
            queue.put(f"line-{index}")
        queue.close()
        for thread in consumers:
            thread.join(timeout=5.0)
            assert not thread.is_alive()
        assert sorted(received) == sorted(f"line-{i}" for i in range(total))
        assert queue.dropped == 0


class TestStreamProducer:
    def test_eof_closes_the_queue(self):
        queue = IngestQueue()
        producer = StreamProducer(io.StringIO("one\ntwo\n"), queue)
        producer.start()
        lines = []
        while True:
            batch = queue.get_batch(10, timeout_s=1.0)
            if batch is None:
                break
            lines.extend(batch)
        producer.join(timeout=2.0)
        assert [line.strip() for line in lines] == ["one", "two"]
        assert queue.closed


class TestSocketServer:
    def test_disconnect_forwards_partial_line_and_keeps_queue_open(self):
        queue = IngestQueue()
        server = SocketIngestServer("127.0.0.1", 0, queue)
        server.start()
        try:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=2.0
            ) as client:
                client.sendall(b'{"session": "a", "end": true}\n')
                client.sendall(b'{"session": "b", "en')  # torn, no newline
            deadline = time.monotonic() + 2.0
            lines = []
            while len(lines) < 2 and time.monotonic() < deadline:
                batch = queue.get_batch(10, timeout_s=0.05)
                assert batch is not None  # disconnect must NOT close it
                lines.extend(batch)
            assert lines == [
                '{"session": "a", "end": true}',
                '{"session": "b", "en',
            ]
            assert not queue.closed
            assert server.connections == 1
        finally:
            server.stop()

    def test_multiple_clients_share_the_queue(self):
        queue = IngestQueue()
        server = SocketIngestServer("127.0.0.1", 0, queue)
        server.start()
        try:
            for name in ("x", "y"):
                with socket.create_connection(
                    ("127.0.0.1", server.port), timeout=2.0
                ) as client:
                    client.sendall(
                        f'{{"session": "{name}", "end": true}}\n'.encode()
                    )
            deadline = time.monotonic() + 2.0
            lines = []
            while len(lines) < 2 and time.monotonic() < deadline:
                lines.extend(queue.get_batch(10, timeout_s=0.05) or [])
            assert {line for line in lines} == {
                '{"session": "x", "end": true}',
                '{"session": "y", "end": true}',
            }
            assert server.connections == 2
        finally:
            server.stop()

    def test_reconnect_churn_does_not_leak_connections_or_readers(self):
        # One socket object and one dead thread handle per reconnect
        # must not accumulate in a long-running server.
        queue = IngestQueue()
        server = SocketIngestServer("127.0.0.1", 0, queue)
        server.start()
        try:
            churn = 10
            for index in range(churn):
                with socket.create_connection(
                    ("127.0.0.1", server.port), timeout=2.0
                ) as client:
                    client.sendall(
                        f'{{"session": "s{index}", "end": true}}\n'.encode()
                    )
            deadline = time.monotonic() + 5.0
            while server.disconnects < churn and time.monotonic() < deadline:
                time.sleep(0.01)
            assert server.disconnects == churn
            with server._conn_lock:
                assert len(server._live) == 0
                assert len(server._readers) == 0
            assert len(drain(queue)) == churn
        finally:
            server.stop()
