"""The ingest layer: backpressure, EOF semantics, the socket server."""

import io
import socket
import threading
import time

import pytest

from repro.monitor.ingest import (
    IngestQueue,
    SocketIngestServer,
    StreamProducer,
    feed_lines,
)


def drain(queue, max_items=1000):
    lines = []
    while True:
        batch = queue.get_batch(max_items, timeout_s=0.05)
        if batch is None or batch == []:
            return lines
        lines.extend(batch)


class TestQueue:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            IngestQueue(maxsize=0)
        with pytest.raises(ValueError):
            IngestQueue(policy="spill")

    def test_block_policy_stalls_the_producer(self):
        queue = IngestQueue(maxsize=2, policy="block")
        produced = []

        def producer():
            for index in range(5):
                queue.put(f"line-{index}")
                produced.append(index)

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        deadline = time.monotonic() + 2.0
        while len(produced) < 2 and time.monotonic() < deadline:
            time.sleep(0.01)
        time.sleep(0.05)  # give the producer a chance to (wrongly) run on
        assert len(produced) <= 3  # at most maxsize in queue + 1 in flight
        # Draining releases the producer; nothing is lost.
        lines = []
        while len(lines) < 5:
            batch = queue.get_batch(10, timeout_s=1.0)
            assert batch is not None
            lines.extend(batch)
        thread.join(timeout=2.0)
        assert not thread.is_alive()
        assert lines == [f"line-{i}" for i in range(5)]
        assert queue.dropped == 0

    def test_drop_policy_sheds_and_counts(self):
        queue = IngestQueue(maxsize=3, policy="drop")
        fed, dropped = feed_lines([f"l{i}" for i in range(10)], queue)
        assert (fed, dropped) == (3, 7)
        assert queue.dropped == 7
        assert queue.depth() == 3
        queue.close()
        assert drain(queue) == ["l0", "l1", "l2"]

    def test_get_batch_timeout_returns_empty_list(self):
        queue = IngestQueue()
        started = time.monotonic()
        assert queue.get_batch(10, timeout_s=0.05) == []
        assert time.monotonic() - started < 1.0

    def test_close_drains_then_returns_none(self):
        queue = IngestQueue()
        queue.put("a")
        queue.put("b")
        queue.close()
        assert queue.get_batch(1, timeout_s=0.1) == ["a"]
        assert queue.get_batch(10, timeout_s=0.1) == ["b"]
        assert queue.get_batch(10, timeout_s=0.1) is None

    def test_put_on_closed_queue_counts_as_drop(self):
        queue = IngestQueue()
        queue.close()
        assert not queue.put("late")
        assert queue.dropped == 1
        assert queue.depth() == 0


class TestStreamProducer:
    def test_eof_closes_the_queue(self):
        queue = IngestQueue()
        producer = StreamProducer(io.StringIO("one\ntwo\n"), queue)
        producer.start()
        lines = []
        while True:
            batch = queue.get_batch(10, timeout_s=1.0)
            if batch is None:
                break
            lines.extend(batch)
        producer.join(timeout=2.0)
        assert [line.strip() for line in lines] == ["one", "two"]
        assert queue.closed


class TestSocketServer:
    def test_disconnect_forwards_partial_line_and_keeps_queue_open(self):
        queue = IngestQueue()
        server = SocketIngestServer("127.0.0.1", 0, queue)
        server.start()
        try:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=2.0
            ) as client:
                client.sendall(b'{"session": "a", "end": true}\n')
                client.sendall(b'{"session": "b", "en')  # torn, no newline
            deadline = time.monotonic() + 2.0
            lines = []
            while len(lines) < 2 and time.monotonic() < deadline:
                batch = queue.get_batch(10, timeout_s=0.05)
                assert batch is not None  # disconnect must NOT close it
                lines.extend(batch)
            assert lines == [
                '{"session": "a", "end": true}',
                '{"session": "b", "en',
            ]
            assert not queue.closed
            assert server.connections == 1
        finally:
            server.stop()

    def test_multiple_clients_share_the_queue(self):
        queue = IngestQueue()
        server = SocketIngestServer("127.0.0.1", 0, queue)
        server.start()
        try:
            for name in ("x", "y"):
                with socket.create_connection(
                    ("127.0.0.1", server.port), timeout=2.0
                ) as client:
                    client.sendall(
                        f'{{"session": "{name}", "end": true}}\n'.encode()
                    )
            deadline = time.monotonic() + 2.0
            lines = []
            while len(lines) < 2 and time.monotonic() < deadline:
                lines.extend(queue.get_batch(10, timeout_s=0.05) or [])
            assert {line for line in lines} == {
                '{"session": "x", "end": true}',
                '{"session": "y", "end": true}',
            }
            assert server.connections == 2
        finally:
            server.stop()
