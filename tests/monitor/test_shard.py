"""The sharded monitor: routing, equivalence, merge, checkpoint layouts."""

import collections
import multiprocessing
import os

import pytest

from repro.artifact.resolver import SpecResolver
from repro.monitor.checkpoint import (
    checkpoint_path,
    list_shard_checkpoints,
    merge_snapshots,
    prune_shard_checkpoints,
    shard_checkpoint_path,
)
from repro.monitor.replay import monitor_verdicts
from repro.monitor.service import Monitor
from repro.monitor.shard import (
    ShardChannel,
    ShardRouter,
    ShardedMonitor,
    peek_session_id,
    split_snapshot,
)
from repro.monitor.synth import synth_lines, synth_traces
from repro.specs import spec_path


@pytest.fixture(scope="module")
def bundle():
    return SpecResolver().load(spec_path("eggtimer.strom"))


@pytest.fixture(scope="module")
def safety(bundle):
    return bundle.check_named("safety")


def verdict_multiset(verdicts):
    return collections.Counter(
        (v.verdict, v.forced, v.disposition, v.reason) for v in verdicts
    )


def run_single(check, lines):
    verdicts = []
    monitor = Monitor(check, on_verdict=verdicts.append)
    report = monitor.run_lines(lines)
    return verdicts, report


def run_sharded(spec, lines, shards, transport, **kwargs):
    verdicts = []
    monitor = ShardedMonitor(
        spec, shards=shards, property_name="safety", transport=transport,
        on_verdict=verdicts.append, **kwargs
    )
    report = monitor.run_lines(lines)
    return verdicts, report


class TestPeek:
    def test_top_level_session_key(self):
        assert peek_session_id('{"session":"abc","state":{}}') == "abc"
        assert peek_session_id('{"end":true,"session":"z"}') == "z"

    def test_integer_ids_canonicalise_like_parse_record(self):
        assert peek_session_id('{"session": 42, "end": true}') == "42"
        assert peek_session_id('{"session": -0}') == "0"

    def test_nested_session_key_never_matches(self):
        line = '{"state":{"queries":{"session":"fake"}},"session":"real"}'
        assert peek_session_id(line) == "real"
        assert peek_session_id('{"state": {"session": "only"}}') is None

    def test_escapes_survive_the_peek(self):
        assert peek_session_id('{"session": "a\\"b"}') == 'a"b'

    def test_garbage_peeks_to_none(self):
        for line in ("", "   ", "not json", "[1,2]", '{"session": 1.5}',
                     '{"session": true}', '{"session": ""}', '{"session"',
                     '{"other": 1}'):
            assert peek_session_id(line) is None, line


class TestRouter:
    def test_routing_is_deterministic_and_in_range(self):
        router = ShardRouter(4)
        for index in range(100):
            shard = router.shard_of(f"session-{index}")
            assert 0 <= shard < 4
            assert shard == router.shard_of(f"session-{index}")

    def test_unpeekable_lines_route_to_shard_zero(self):
        router = ShardRouter(4)
        assert router.route("not json at all") == 0
        assert router.route('{"no_session": 1}') == 0

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            ShardRouter(0)


class TestInlineEquivalence:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_sharded_multiset_equals_single_process(
        self, bundle, safety, shards
    ):
        lines = list(synth_lines(seed=0, sessions=60, fault_rate=0.2))
        single, single_report = run_single(safety, lines)
        sharded, report = run_sharded(bundle, lines, shards, "inline")
        assert verdict_multiset(sharded) == verdict_multiset(single)
        merged = report.metrics
        assert merged.sessions_started == single_report.metrics.sessions_started
        assert merged.records_ingested == single_report.metrics.records_ingested
        assert merged.verdicts == single_report.metrics.verdicts

    def test_malformed_lines_quarantine_on_shard_zero(self, bundle, safety):
        lines = list(synth_lines(seed=3, sessions=12, fault_rate=0.0))
        lines.insert(3, "{torn")
        lines.insert(9, '{"state": {}}')
        single, single_report = run_single(safety, lines)
        sharded, report = run_sharded(bundle, lines, 4, "inline")
        assert verdict_multiset(sharded) == verdict_multiset(single)
        assert report.metrics.malformed_records == 2
        assert len(report.quarantine) == 2
        assert report.shard_metrics[0].malformed_records == 2
        assert all(m.malformed_records == 0
                   for m in report.shard_metrics[1:])

    def test_replay_helper_agrees_with_offline(self, safety):
        traces, _ = synth_traces(seed=5, sessions=10, fault_rate=0.3)
        unsharded = monitor_verdicts(safety, traces)
        sharded = monitor_verdicts(safety, traces, shards=3)
        assert set(sharded) == set(unsharded)
        for session, verdict in unsharded.items():
            assert sharded[session].verdict == verdict.verdict
            assert sharded[session].forced == verdict.forced

    def test_interleaving_cannot_split_a_session(self, bundle, safety):
        # Reverse the stream's session interleaving: per-session order
        # is preserved, so the multiset must not move.
        lines = list(synth_lines(seed=7, sessions=30, fault_rate=0.2))
        by_session = collections.defaultdict(list)
        for line in lines:
            by_session[peek_session_id(line)].append(line)
        rotated = []
        for session in reversed(sorted(by_session)):
            rotated.extend(by_session[session])
        single, _ = run_single(safety, lines)
        sharded, _ = run_sharded(bundle, rotated, 4, "inline")
        assert verdict_multiset(sharded) == verdict_multiset(single)


class TestProcessTransport:
    def test_two_shards_match_single_process(self, bundle, safety):
        lines = list(synth_lines(seed=0, sessions=60, fault_rate=0.2))
        single, single_report = run_single(safety, lines)
        sharded, report = run_sharded(bundle, lines, 2, "process")
        assert verdict_multiset(sharded) == verdict_multiset(single)
        merged = report.metrics
        assert merged.records_ingested == single_report.metrics.records_ingested
        assert merged.sessions_started == 60
        assert merged.verdicts == single_report.metrics.verdicts
        # The merge really is a sum of the per-shard parts.
        assert len(report.shard_metrics) == 2
        assert sum(m.sessions_started for m in report.shard_metrics) == 60
        assert sum(m.records_ingested for m in report.shard_metrics) == (
            merged.records_ingested
        )
        data = report.to_dict()
        assert data["shards"] == 2
        assert len(data["shard_metrics"]) == 2

    def test_process_transport_requires_a_bundle(self, safety):
        with pytest.raises(TypeError, match="artifact bytes"):
            ShardedMonitor(safety, shards=2, transport="process")

    def test_finish_is_idempotent(self, bundle):
        lines = list(synth_lines(seed=2, sessions=8, fault_rate=0.0))
        monitor = ShardedMonitor(bundle, shards=2, property_name="safety")
        monitor.feed_lines(lines)
        first = monitor.finish()
        assert monitor.finish() is first


class TestChannels:
    def test_drop_policy_sheds_and_counts_whole_chunks(self):
        ctx = multiprocessing.get_context("fork")
        channel = ShardChannel(ctx, capacity=1, policy="drop")
        channel.send_lines(["a", "b"])
        # The first chunk may still be in the feeder pipe; saturate
        # until drops begin, then verify counting is per line.
        while channel.dropped == 0:
            channel.send_lines(["c", "d", "e"])
        assert channel.dropped % 3 == 0
        channel.queue.cancel_join_thread()

    def test_invalid_policy_rejected(self):
        ctx = multiprocessing.get_context("fork")
        with pytest.raises(ValueError):
            ShardChannel(ctx, capacity=1, policy="spill")


class TestSplitSnapshot:
    def test_entries_and_retired_route_by_session_id(self):
        router = ShardRouter(3)
        snapshot = {
            "entries": [{"session_id": f"s{i}"} for i in range(9)],
            "retired": [(f"r{i}", "finished") for i in range(9)],
            "counters": {"records_ingested": 90, "states_applied": 81,
                         "max_formula_size": 7},
            "verdicts": {"PROBABLY_TRUE": 9},
            "queue_depth_samples": [1, 2],
            "intern_hits": 5, "intern_misses": 2,
            "cache_evictions": 0, "cache_trims": 0,
            "wall_s": 3.5,
            "quarantine": [("bad", "err")],
        }
        parts = split_snapshot(snapshot, router)
        assert len(parts) == 3
        for index, part in enumerate(parts):
            for item in part["entries"]:
                assert router.shard_of(item["session_id"]) == index
            for session_id, _reason in part["retired"]:
                assert router.shard_of(session_id) == index
        assert sum(len(p["entries"]) for p in parts) == 9
        assert sum(len(p["retired"]) for p in parts) == 9
        # Aggregates ride on shard 0; the merged totals are preserved.
        remerged = merge_snapshots(parts)
        assert remerged["counters"]["records_ingested"] == 90
        assert remerged["counters"]["max_formula_size"] == 7
        assert remerged["verdicts"] == {"PROBABLY_TRUE": 9}
        assert remerged["wall_s"] == 3.5
        assert remerged["quarantine"] == [("bad", "err")]


class TestShardedCheckpoint:
    def _split(self, seed=11, sessions=24):
        lines = list(synth_lines(seed=seed, sessions=sessions, fault_rate=0.2))
        return lines, len(lines) // 2

    def test_suspend_writes_one_file_per_shard(self, bundle, tmp_path):
        lines, cut = self._split()
        monitor = ShardedMonitor(bundle, shards=3, property_name="safety",
                                 transport="inline")
        monitor.feed_lines(lines[:cut])
        monitor.suspend(str(tmp_path))
        files = list_shard_checkpoints(str(tmp_path))
        assert [index for index, _path in files] == [0, 1, 2]
        assert not os.path.exists(checkpoint_path(str(tmp_path)))

    def test_restore_with_same_shard_count(self, bundle, safety, tmp_path):
        lines, cut = self._split()
        single, _ = run_single(safety, lines)
        first = []
        monitor = ShardedMonitor(bundle, shards=2, property_name="safety",
                                 transport="process", on_verdict=first.append)
        monitor.feed_lines(lines[:cut])
        monitor.suspend(str(tmp_path))
        second = []
        resumed = ShardedMonitor(bundle, shards=2, property_name="safety",
                                 transport="process",
                                 on_verdict=second.append)
        header = resumed.restore_from(str(tmp_path))
        assert header["shards"] == 2
        resumed.feed_lines(lines[cut:])
        report = resumed.finish()
        assert verdict_multiset(first + second) == verdict_multiset(single)
        assert report.metrics.records_ingested == len(lines)

    def test_restore_reshards_to_a_different_count(
        self, bundle, safety, tmp_path
    ):
        lines, cut = self._split(seed=13)
        single, _ = run_single(safety, lines)
        first = []
        monitor = ShardedMonitor(bundle, shards=4, property_name="safety",
                                 transport="inline", on_verdict=first.append)
        monitor.feed_lines(lines[:cut])
        monitor.suspend(str(tmp_path))
        second = []
        resumed = ShardedMonitor(bundle, shards=2, property_name="safety",
                                 transport="inline", on_verdict=second.append)
        resumed.restore_from(str(tmp_path))
        resumed.feed_lines(lines[cut:])
        report = resumed.finish()
        assert verdict_multiset(first + second) == verdict_multiset(single)
        assert report.metrics.records_ingested == len(lines)
        # The narrower layout replaced the wider one on the next round.
        resumed2 = ShardedMonitor(bundle, shards=2, property_name="safety",
                                  transport="inline")
        resumed2.restore_from(str(tmp_path))
        resumed2.checkpoint_to(str(tmp_path))
        assert [i for i, _p in list_shard_checkpoints(str(tmp_path))] == [0, 1]

    def test_single_process_restores_a_sharded_directory(
        self, bundle, safety, tmp_path
    ):
        lines, cut = self._split(seed=17)
        single, _ = run_single(safety, lines)
        first = []
        monitor = ShardedMonitor(bundle, shards=3, property_name="safety",
                                 transport="inline", on_verdict=first.append)
        monitor.feed_lines(lines[:cut])
        monitor.suspend(str(tmp_path))
        second = []
        resumed = Monitor(safety, on_verdict=second.append)
        header = resumed.restore_from(str(tmp_path))
        assert header["shards"] == 3
        for line in lines[cut:]:
            resumed.feed_line(line)
        report = resumed.finish()
        assert verdict_multiset(first + second) == verdict_multiset(single)
        assert report.metrics.records_ingested == len(lines)
        # A later single-process checkpoint owns the directory again.
        resumed.checkpoint_to(str(tmp_path))
        assert os.path.exists(checkpoint_path(str(tmp_path)))
        assert list_shard_checkpoints(str(tmp_path)) == []

    def test_sharded_restores_a_single_process_checkpoint(
        self, bundle, safety, tmp_path
    ):
        lines, cut = self._split(seed=19)
        single, _ = run_single(safety, lines)
        first = []
        monitor = Monitor(safety, on_verdict=first.append)
        for line in lines[:cut]:
            monitor.feed_line(line)
        monitor.suspend(str(tmp_path))
        second = []
        resumed = ShardedMonitor(bundle, shards=2, property_name="safety",
                                 transport="inline", on_verdict=second.append)
        resumed.restore_from(str(tmp_path))
        resumed.feed_lines(lines[cut:])
        report = resumed.finish()
        assert verdict_multiset(first + second) == verdict_multiset(single)
        assert report.metrics.records_ingested == len(lines)

    def test_wrong_property_is_rejected(self, bundle, tmp_path):
        from repro.artifact.errors import ArtifactFormatError

        lines, cut = self._split(seed=23)
        monitor = ShardedMonitor(bundle, shards=2, property_name="safety",
                                 transport="inline")
        monitor.feed_lines(lines[:cut])
        monitor.suspend(str(tmp_path))
        other = ShardedMonitor(bundle, shards=2, property_name="liveness",
                               transport="inline")
        with pytest.raises(ArtifactFormatError, match="property"):
            other.restore_from(str(tmp_path))

    def test_empty_directory_is_rejected(self, bundle, tmp_path):
        from repro.artifact.errors import ArtifactFormatError

        monitor = ShardedMonitor(bundle, shards=2, property_name="safety",
                                 transport="inline")
        with pytest.raises(ArtifactFormatError, match="no monitor checkpoint"):
            monitor.restore_from(str(tmp_path))

    def test_prune_helpers(self, tmp_path):
        for index in range(4):
            path = shard_checkpoint_path(str(tmp_path), index)
            with open(path, "wb") as handle:
                handle.write(b"QSRC....")
        prune_shard_checkpoints(str(tmp_path), keep=(0, 1))
        assert [i for i, _p in list_shard_checkpoints(str(tmp_path))] == [0, 1]
        prune_shard_checkpoints(str(tmp_path))
        assert list_shard_checkpoints(str(tmp_path)) == []
