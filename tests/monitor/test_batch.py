"""Cohort-grouped progression: sharing accounting, batched == naive."""

from repro.monitor.batch import BatchProgressor
from repro.monitor.table import SessionEntry
from repro.quickltl import Always, And, Atom, ProgressionCaches, atom

# One shared formula object: atoms carry predicate closures, so sharing
# (and hence cohort grouping) requires reusing the node, exactly as a
# Monitor reuses its spec's formula for every session.
P = atom("p")
Q = atom("q")
FORMULA = Always(5, And(P, Q))


def entry(session_id, residual=FORMULA):
    return SessionEntry(session_id=session_id, residual=residual)


class TestBatching:
    def test_cohort_members_share_one_step(self):
        batcher = BatchProgressor(ProgressionCaches())
        state = {"p": True, "q": True}
        work = [(entry(f"s{i}"), state, "key-same") for i in range(4)]
        outcomes = batcher.run_round(work)
        assert batcher.session_steps == 4
        assert batcher.cohort_steps == 1
        assert batcher.sharing_ratio == 0.75
        # One computation, shared by assignment: identical outcome nodes.
        assert len({id(outcome) for outcome in outcomes}) == 1

    def test_different_states_split_cohorts(self):
        batcher = BatchProgressor(ProgressionCaches())
        work = [
            (entry("a"), {"p": True, "q": True}, "k1"),
            (entry("b"), {"p": True, "q": False}, "k2"),
        ]
        outcomes = batcher.run_round(work)
        assert batcher.cohort_steps == 2
        assert outcomes[0].verdict is not None
        assert outcomes[0].residual is not outcomes[1].residual

    def test_batched_equals_naive_per_session(self):
        trace = [
            {"p": True, "q": True},
            {"p": True, "q": True},
            {"p": False, "q": True},
        ]

        def run(enabled):
            batcher = BatchProgressor(ProgressionCaches(), enabled=enabled)
            entries = [entry(f"s{i}") for i in range(6)]
            seen = []
            for position, state in enumerate(trace):
                work = [(e, state, f"state-{position}") for e in entries]
                outcomes = batcher.run_round(work)
                for e, outcome in zip(entries, outcomes):
                    e.residual = outcome.residual
                seen.append([
                    (outcome.verdict, outcome.residual, outcome.size)
                    for outcome in outcomes
                ])
            return seen

        assert run(True) == run(False)

    def test_disabled_batching_counts_every_step_as_a_cohort(self):
        batcher = BatchProgressor(ProgressionCaches(), enabled=False)
        state = {"p": True, "q": True}
        batcher.run_round([(entry(f"s{i}"), state, "same") for i in range(3)])
        assert batcher.cohort_steps == batcher.session_steps == 3
        assert batcher.sharing_ratio == 0.0


class TestErrorIsolation:
    def test_failing_cohort_does_not_poison_others(self):
        def boom(state):
            raise KeyError("#missing")

        bad = Always(5, Atom("boom", boom))
        batcher = BatchProgressor(ProgressionCaches())
        state = {"p": True, "q": True}
        work = [
            (entry("bad1", bad), state, "k"),
            (entry("bad2", bad), state, "k"),
            (entry("good"), state, "k"),
        ]
        outcomes = batcher.run_round(work)
        assert outcomes[0].error is not None
        assert "KeyError" in outcomes[0].error
        # Same cohort, same (shared) error outcome.
        assert outcomes[1].error == outcomes[0].error
        assert outcomes[2].error is None
        assert outcomes[2].verdict is not None
