"""The bounded session table: LRU capacity, idle TTL, retirement memory."""

import pytest

from repro.monitor.table import SessionTable
from repro.quickltl import atom

F = atom("p")


class TestCapacity:
    def test_lru_eviction_order(self):
        table = SessionTable(max_sessions=2)
        a, _ = table.open("a", F, now=1.0)
        table.open("b", F, now=2.0)
        table.touch(a, now=3.0)  # b is now least-recently-active
        _, evicted = table.open("c", F, now=4.0)
        assert [e.session_id for e in evicted] == ["b"]
        assert "a" in table and "c" in table and "b" not in table
        assert table.retired_reason("b") == "evicted:lru"

    def test_cap_holds_under_unbounded_ids(self):
        table = SessionTable(max_sessions=5)
        for index in range(1000):
            table.open(f"s{index}", F, now=float(index))
            assert len(table) <= 5
        assert len(table) == 5

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            SessionTable(max_sessions=0)
        with pytest.raises(ValueError):
            SessionTable(idle_ttl_s=0)

    def test_reopening_live_id_at_capacity_evicts_nothing(self):
        # Re-opening a live id replaces its entry without growing the
        # table, so no innocent LRU victim may be evicted for it.
        table = SessionTable(max_sessions=2)
        table.open("a", F, now=1.0)
        table.open("b", F, now=2.0)
        _, evicted = table.open("a", F, now=3.0)
        assert evicted == []
        assert "a" in table and "b" in table
        # The replacement entry takes the *fresh* LRU position: "b" is
        # now the oldest, so the next admission evicts it, not "a".
        _, evicted = table.open("c", F, now=4.0)
        assert [e.session_id for e in evicted] == ["b"]
        assert "a" in table and "c" in table

    def test_reopening_sole_id_never_evicts_itself(self):
        table = SessionTable(max_sessions=1)
        table.open("a", F, now=1.0)
        entry, evicted = table.open("a", F, now=2.0)
        assert evicted == []
        assert table.get("a") is entry
        assert table.retired_reason("a") is None


class TestIdleTtl:
    def test_sweep_evicts_only_stale_entries(self):
        table = SessionTable(idle_ttl_s=10.0)
        table.open("old", F, now=0.0)
        fresh, _ = table.open("fresh", F, now=0.0)
        table.touch(fresh, now=8.0)
        evicted = table.sweep_idle(now=11.0)
        assert [e.session_id for e in evicted] == ["old"]
        assert table.retired_reason("old") == "evicted:idle"
        assert "fresh" in table

    def test_no_ttl_means_no_sweep(self):
        table = SessionTable()
        table.open("a", F, now=0.0)
        assert table.sweep_idle(now=1e9) == []


class TestRetirement:
    def test_retire_remembers_reason(self):
        table = SessionTable()
        table.open("a", F, now=0.0)
        entry = table.retire("a", "finished")
        assert entry is not None and entry.session_id == "a"
        assert "a" not in table
        assert table.retired_reason("a") == "finished"

    def test_readmission_clears_stale_memory(self):
        table = SessionTable()
        table.open("a", F, now=0.0)
        table.retire("a", "finished")
        table.open("a", F, now=1.0)
        assert table.retired_reason("a") is None

    def test_ring_is_bounded(self):
        table = SessionTable(retired_capacity=3)
        for index in range(5):
            table.open(f"s{index}", F, now=0.0)
            table.retire(f"s{index}", "finished")
        assert table.retired_reason("s0") is None
        assert table.retired_reason("s1") is None
        assert table.retired_reason("s4") == "finished"

    def test_drain_returns_everything(self):
        table = SessionTable()
        table.open("a", F, now=0.0)
        table.open("b", F, now=0.0)
        drained = {e.session_id for e in table.drain()}
        assert drained == {"a", "b"}
        assert len(table) == 0
        # EOF-drained sessions were never *finished* -- the ring must
        # say "eof" so late records are attributed to the right cause.
        assert table.retired_reason("a") == "eof"
        assert table.retired_reason("b") == "eof"

    def test_drain_reason_is_overridable(self):
        table = SessionTable()
        table.open("a", F, now=0.0)
        table.drain(reason="finished")
        assert table.retired_reason("a") == "finished"
