"""Virtual clock and scheduler."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.browser import Scheduler, VirtualClock
from tests.strategies import examples


@pytest.fixture()
def sched():
    return Scheduler(VirtualClock())


class TestClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0

    def test_advance(self):
        clock = VirtualClock()
        clock.advance(100)
        clock.advance(50)
        assert clock.now == 150

    def test_no_time_travel(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)


class TestTimeouts:
    def test_fires_at_deadline(self, sched):
        fired = []
        sched.set_timeout(lambda: fired.append(sched.clock.now), 100)
        sched.advance(99)
        assert fired == []
        sched.advance(1)
        assert fired == [100]

    def test_fires_exactly_once(self, sched):
        fired = []
        sched.set_timeout(lambda: fired.append(1), 10)
        sched.advance(100)
        sched.advance(100)
        assert fired == [1]

    def test_zero_delay_fires_on_flush(self, sched):
        fired = []
        sched.set_timeout(lambda: fired.append(1), 0)
        sched.flush_immediate()
        assert fired == [1]

    def test_cancel(self, sched):
        fired = []
        tid = sched.set_timeout(lambda: fired.append(1), 10)
        sched.cancel(tid)
        sched.advance(100)
        assert fired == []

    def test_cancel_unknown_is_noop(self, sched):
        sched.cancel(999)

    def test_negative_delay_rejected(self, sched):
        with pytest.raises(ValueError):
            sched.set_timeout(lambda: None, -5)

    def test_tasks_scheduled_by_tasks_fire_in_same_advance(self, sched):
        fired = []

        def outer():
            fired.append("outer")
            sched.set_timeout(lambda: fired.append("inner"), 10)

        sched.set_timeout(outer, 10)
        sched.advance(30)
        assert fired == ["outer", "inner"]

    def test_order_within_same_deadline_is_fifo(self, sched):
        fired = []
        sched.set_timeout(lambda: fired.append("a"), 10)
        sched.set_timeout(lambda: fired.append("b"), 10)
        sched.advance(10)
        assert fired == ["a", "b"]


class TestIntervals:
    def test_fires_repeatedly(self, sched):
        fired = []
        sched.set_interval(lambda: fired.append(sched.clock.now), 1000)
        sched.advance(3500)
        assert fired == [1000, 2000, 3000]

    def test_cancel_stops_interval(self, sched):
        fired = []
        tid = sched.set_interval(lambda: fired.append(1), 100)
        sched.advance(250)
        sched.cancel(tid)
        sched.advance(1000)
        assert fired == [1, 1]

    def test_nonpositive_period_rejected(self, sched):
        with pytest.raises(ValueError):
            sched.set_interval(lambda: None, 0)


class TestDeadlines:
    def test_next_deadline(self, sched):
        assert sched.next_deadline is None
        sched.set_timeout(lambda: None, 50)
        sched.set_timeout(lambda: None, 20)
        assert sched.next_deadline == 20

    def test_next_deadline_skips_cancelled(self, sched):
        tid = sched.set_timeout(lambda: None, 20)
        sched.set_timeout(lambda: None, 50)
        sched.cancel(tid)
        assert sched.next_deadline == 50

    def test_pending_count(self, sched):
        sched.set_timeout(lambda: None, 10)
        sched.set_interval(lambda: None, 10)
        assert sched.pending_count == 2

    def test_run_until_past_rejected(self, sched):
        sched.advance(100)
        with pytest.raises(ValueError):
            sched.run_until(50)

    def test_clock_lands_on_target(self, sched):
        sched.set_timeout(lambda: None, 30)
        sched.advance(100)
        assert sched.clock.now == 100


class TestPropertyBased:
    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=20))
    @examples(100)
    def test_timeouts_fire_in_deadline_order(self, delays):
        sched = Scheduler(VirtualClock())
        fired = []
        for delay in delays:
            sched.set_timeout(lambda d=delay: fired.append(d), delay)
        sched.advance(2000)
        assert fired == sorted(delays)
        assert len(fired) == len(delays)

    @given(
        st.lists(st.integers(min_value=1, max_value=100), min_size=1, max_size=10),
        st.integers(min_value=0, max_value=500),
    )
    @examples(100)
    def test_interval_count_matches_elapsed_time(self, periods, horizon):
        sched = Scheduler(VirtualClock())
        counts = {i: 0 for i in range(len(periods))}

        def bump(i):
            counts[i] += 1

        for i, period in enumerate(periods):
            sched.set_interval(lambda i=i: bump(i), period)
        sched.advance(horizon)
        for i, period in enumerate(periods):
            assert counts[i] == horizon // period
