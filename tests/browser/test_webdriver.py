"""The simulated WebDriver: gestures, interactability, lifecycle."""

import pytest

from repro.browser import Browser, NotInteractableError
from repro.dom import Element


def blank_app(page):
    """An app exposing a button, a text input, a checkbox and a link."""
    doc = page.document
    doc.root.append_child(Element("button", {"id": "btn"}, text="go"))
    doc.root.append_child(Element("input", {"id": "field", "type": "text"}))
    doc.root.append_child(Element("input", {"id": "box", "type": "checkbox"}))
    doc.root.append_child(Element("a", {"id": "link", "href": "#/active"}, text="Active"))
    return object()


@pytest.fixture()
def browser():
    b = Browser(blank_app)
    b.load()
    return b


class TestLifecycle:
    def test_document_requires_load(self):
        b = Browser(blank_app)
        with pytest.raises(RuntimeError):
            b.document

    def test_load_fires_listeners(self):
        b = Browser(blank_app)
        loads = []
        b.on_load(lambda: loads.append(1))
        b.load()
        assert loads == [1]
        assert b.loads == 1

    def test_reload_replaces_document_keeps_storage(self, browser):
        browser.storage.set_item("k", "v")
        old_doc = browser.document
        browser.reload()
        assert browser.document is not old_doc
        assert browser.storage.get_item("k") == "v"

    def test_reload_cancels_old_timers(self, browser):
        fired = []
        browser.page.set_interval(lambda: fired.append(1), 10)
        browser.reload()
        browser.advance(100)
        assert fired == []


class TestClick:
    def test_click_dispatches(self, browser):
        btn = browser.document.get_element_by_id("btn")
        clicks = []
        browser.document.add_event_listener(btn, "click", lambda e: clicks.append(1))
        browser.click(btn)
        assert clicks == [1]

    def test_click_focuses_focusable(self, browser):
        field = browser.document.get_element_by_id("field")
        browser.click(field)
        assert browser.document.active_element is field

    def test_click_nonfocusable_blurs(self, browser):
        doc = browser.document
        div = doc.root.append_child(Element("div", {"id": "d"}, text="x"))
        browser.click(doc.get_element_by_id("field"))
        browser.click(div)
        assert doc.active_element is None

    def test_click_checkbox_toggles_and_fires_change(self, browser):
        box = browser.document.get_element_by_id("box")
        changes = []
        browser.document.add_event_listener(box, "change", lambda e: changes.append(box.checked))
        browser.click(box)
        assert box.checked is True
        browser.click(box)
        assert box.checked is False
        assert changes == [True, False]

    def test_click_checkbox_prevent_default_reverts(self, browser):
        box = browser.document.get_element_by_id("box")
        browser.document.add_event_listener(box, "click", lambda e: e.prevent_default())
        browser.click(box)
        assert box.checked is False

    def test_click_hash_link_routes(self, browser):
        link = browser.document.get_element_by_id("link")
        browser.click(link)
        assert browser.document.location_hash == "/active"

    def test_click_invisible_raises(self, browser):
        btn = browser.document.get_element_by_id("btn")
        btn.set_style("display", "none")
        with pytest.raises(NotInteractableError):
            browser.click(btn)

    def test_click_disabled_raises(self, browser):
        btn = browser.document.get_element_by_id("btn")
        btn.set_attribute("disabled", "")
        with pytest.raises(NotInteractableError):
            browser.click(btn)

    def test_click_detached_raises(self, browser):
        orphan = Element("button")
        with pytest.raises(NotInteractableError):
            browser.click(orphan)


class TestDblclickHover:
    def test_dblclick_fires_two_clicks_then_dblclick(self, browser):
        btn = browser.document.get_element_by_id("btn")
        order = []
        browser.document.add_event_listener(btn, "click", lambda e: order.append("c"))
        browser.document.add_event_listener(btn, "dblclick", lambda e: order.append("d"))
        browser.dblclick(btn)
        assert order == ["c", "c", "d"]

    def test_hover_fires_mouseover(self, browser):
        btn = browser.document.get_element_by_id("btn")
        seen = []
        browser.document.add_event_listener(btn, "mouseover", lambda e: seen.append(1))
        browser.hover(btn)
        assert seen == [1]


class TestTyping:
    def test_type_into_focused(self, browser):
        field = browser.document.get_element_by_id("field")
        browser.click(field)
        browser.type_text("hi")
        assert field.value == "hi"

    def test_type_fires_input_per_char(self, browser):
        field = browser.document.get_element_by_id("field")
        inputs = []
        browser.document.add_event_listener(field, "input", lambda e: inputs.append(field.value))
        browser.type_text("abc", element=field)
        assert inputs == ["a", "ab", "abc"]

    def test_type_with_element_focuses_it(self, browser):
        field = browser.document.get_element_by_id("field")
        browser.type_text("x", element=field)
        assert browser.document.active_element is field

    def test_type_without_focus_raises(self, browser):
        with pytest.raises(NotInteractableError):
            browser.type_text("x")

    def test_type_into_non_input_raises(self, browser):
        btn = browser.document.get_element_by_id("btn")
        browser.document.focus(btn)
        with pytest.raises(NotInteractableError):
            browser.type_text("x")

    def test_press_key_dispatches_keydown_keyup(self, browser):
        field = browser.document.get_element_by_id("field")
        browser.click(field)
        keys = []
        browser.document.add_event_listener(
            field, "keydown", lambda e: keys.append(("down", e.key))
        )
        browser.document.add_event_listener(
            field, "keyup", lambda e: keys.append(("up", e.key))
        )
        browser.press_key("Enter")
        assert keys == [("down", "Enter"), ("up", "Enter")]

    def test_press_key_without_focus_raises(self, browser):
        with pytest.raises(NotInteractableError):
            browser.press_key("Enter")

    def test_clear(self, browser):
        field = browser.document.get_element_by_id("field")
        browser.type_text("hello", element=field)
        browser.clear(field)
        assert field.value == ""


class TestTime:
    def test_advance_runs_timers(self, browser):
        fired = []
        browser.page.set_timeout(lambda: fired.append(1), 500)
        browser.advance(1000)
        assert fired == [1]

    def test_flush_runs_zero_delay(self, browser):
        fired = []
        browser.page.set_timeout(lambda: fired.append(1), 0)
        browser.flush()
        assert fired == [1]
