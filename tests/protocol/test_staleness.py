"""Figure 10 end-to-end: asynchronous events make Act requests stale."""

import pytest

from repro.dom import Element
from repro.executors import DomExecutor
from repro.protocol.messages import Acted, Act, Event, Start, Timeout
from repro.specstrom.actions import PrimitiveEvent, ResolvedAction


def ticking_app(page):
    """A label rewritten by a timer plus a click counter button."""
    doc = page.document
    label = Element("span", {"id": "label"}, text="0")
    button = Element("button", {"id": "button"}, text="go")
    doc.root.append_child(label)
    doc.root.append_child(button)
    state = {"ticks": 0, "clicks": 0}

    def tick():
        state["ticks"] += 1
        label.text = str(state["ticks"])

    doc.add_event_listener(
        button, "click", lambda e: state.__setitem__("clicks", state["clicks"] + 1)
    )
    page.set_interval(tick, 250)
    return state


@pytest.fixture()
def executor():
    ex = DomExecutor(ticking_app)
    ex.start(
        Start(
            frozenset({"#label", "#button"}),
            (("tick?", PrimitiveEvent("changed", "#label")),),
        )
    )
    return ex


CLICK = ResolvedAction("click", "#button", 0, ())


class TestFigureTenScenario:
    def test_initial_loaded_event(self, executor):
        messages = executor.drain()
        assert len(messages) == 1
        assert isinstance(messages[0], Event)
        assert messages[0].name == "loaded?"
        assert messages[0].state.happened == ("loaded?",)

    def test_fresh_act_is_performed(self, executor):
        executor.drain()
        assert executor.act(Act(CLICK, "go!", version=1)) is True
        (message,) = executor.drain()
        assert isinstance(message, Acted)
        assert message.state.happened == ("go!",)

    def test_async_event_makes_request_stale(self, executor):
        executor.drain()
        # The checker decides at version 1... but a tick fires while it
        # is thinking.
        executor.pass_time(300.0)
        accepted = executor.act(Act(CLICK, "go!", version=1))
        assert accepted is False
        assert executor.recorder.stale_rejections == 1
        messages = executor.drain()
        assert any(isinstance(m, Event) and m.name == "tick?" for m in messages)
        # No Acted message: the stale request was dropped entirely.
        assert not any(isinstance(m, Acted) for m in messages)

    def test_retry_with_fresh_version_succeeds(self, executor):
        executor.drain()
        executor.pass_time(300.0)
        executor.act(Act(CLICK, "go!", version=1))  # stale
        executor.drain()
        assert executor.act(Act(CLICK, "go!", version=executor.version)) is True

    def test_stale_request_does_not_mutate_app(self, executor):
        executor.drain()
        executor.pass_time(300.0)
        executor.act(Act(CLICK, "go!", version=1))
        assert executor.browser.app["clicks"] == 0

    def test_event_states_carry_updated_label(self, executor):
        executor.drain()
        executor.pass_time(600.0)  # two ticks
        messages = [m for m in executor.drain() if isinstance(m, Event)]
        assert len(messages) == 2
        texts = [m.state.queries["#label"][0].text for m in messages]
        assert texts == ["1", "2"]

    def test_timeout_when_no_event(self, executor):
        executor.drain()
        # Await events but the next tick is 250ms away; time out sooner.
        executor.await_events(100.0)
        (message,) = executor.drain()
        assert isinstance(message, Timeout)
        assert message.state.happened == ()

    def test_await_stops_at_first_event(self, executor):
        executor.drain()
        executor.await_events(10_000.0)
        messages = executor.drain()
        assert len(messages) == 1
        assert isinstance(messages[0], Event)
        # Virtual time stopped at the tick, not the full timeout.
        assert executor.now_ms == 250.0

    def test_snapshots_are_immutable_views(self, executor):
        (loaded,) = executor.drain()
        before = loaded.state.queries["#label"][0].text
        executor.pass_time(1000.0)
        assert loaded.state.queries["#label"][0].text == before
