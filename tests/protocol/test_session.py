"""Trace recording and the version/staleness arithmetic (Figure 10)."""

import pytest

from repro.protocol import TraceRecorder
from repro.specstrom.state import StateSnapshot


def snap(version=0):
    return StateSnapshot({}, (), version, 0.0)


class TestRecorder:
    def test_empty(self):
        recorder = TraceRecorder()
        assert recorder.length == 0
        with pytest.raises(RuntimeError):
            recorder.last_state

    def test_append_returns_version(self):
        recorder = TraceRecorder()
        assert recorder.append("event", ("loaded?",), snap()) == 1
        assert recorder.append("acted", ("go!",), snap()) == 2
        assert recorder.length == 2

    def test_staleness_rule(self):
        """An Act carrying a version smaller than the trace length is
        out of date: the checker decided before seeing the new states."""
        recorder = TraceRecorder()
        recorder.append("event", ("loaded?",), snap())
        assert not recorder.is_stale(1)  # decided after seeing state 1
        recorder.append("event", ("tick?",), snap())
        assert recorder.is_stale(1)  # a state arrived meanwhile
        assert not recorder.is_stale(2)

    def test_rejection_counter(self):
        recorder = TraceRecorder()
        recorder.note_stale_rejection()
        recorder.note_stale_rejection()
        assert recorder.stale_rejections == 2

    def test_happened_sequence(self):
        recorder = TraceRecorder()
        recorder.append("event", ("loaded?",), snap())
        recorder.append("acted", ("a!",), snap())
        recorder.append("timeout", (), snap())
        assert recorder.happened_sequence() == [("loaded?",), ("a!",), ()]
