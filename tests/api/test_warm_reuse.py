"""Warm executor reuse: the determinism guard.

The whole point of the lease layer is that it is *only* an
optimisation: for the same seeds, warm-reuse campaigns must produce
bit-for-bit the verdicts, counterexamples and reporter event streams of
cold-start campaigns.  These tests pin that equivalence at every layer:
executor reset vs fresh start, single campaigns, multi-target batches
(serial and pooled), and the many-properties x one-app ``check_all``
path.
"""

import random

from repro.api import CheckSession, CheckTarget, ExecutorCache, SessionConfig
from repro.api.lease import ExecutorLease
from repro.apps.eggtimer import egg_timer_app
from repro.checker import Runner, RunnerConfig
from repro.executors import CCSExecutor, DomExecutor, parse_definitions
from repro.protocol.messages import Reset, Start
from repro.specs import load_eggtimer_spec

from .test_scheduler import (
    RecordingReporter,
    assert_batches_identical,
    three_targets,
)

QUICK = RunnerConfig(tests=3, scheduled_actions=10, demand_allowance=5,
                     seed=3, shrink=False)


class TestExecutorResetEquivalence:
    """A reset session must be observationally identical to a fresh one."""

    DEPS = frozenset({"#toggle", "#remaining"})

    def _drive(self, executor):
        """A fixed little session: initial load, time passing, a click."""
        stream = list(executor.drain())
        executor.pass_time(1500.0)
        stream.extend(executor.drain())
        from repro.protocol.messages import Act
        from repro.specstrom.actions import ResolvedAction

        executor.act(Act(ResolvedAction("click", "#toggle", 0),
                         "start!", executor.version))
        stream.extend(executor.drain())
        executor.await_events(1200.0)
        stream.extend(executor.drain())
        return stream

    def test_dom_executor_reset_matches_fresh_start(self):
        start = Start(self.DEPS, ())
        warm = DomExecutor(egg_timer_app())
        warm.start(start)
        self._drive(warm)  # dirty the session: clock advanced, app ran
        assert warm.now_ms > 0
        assert warm.reset(Reset(self.DEPS, ())) is True
        assert warm.now_ms == 0.0
        assert warm.version == 1  # just the fresh loaded? state

        fresh = DomExecutor(egg_timer_app())
        fresh.start(start)
        assert self._drive(warm) == self._drive(fresh)

    def test_dom_executor_reset_wipes_storage(self):
        start = Start(self.DEPS, ())
        executor = DomExecutor(egg_timer_app())
        executor.start(start)
        executor.browser.storage.set_item("todos", "[1,2,3]")
        executor.reset(Reset(self.DEPS, ()))
        assert executor.browser.storage.get_item("todos") is None

    def test_dom_executor_unstarted_cannot_reset(self):
        executor = DomExecutor(egg_timer_app())
        assert executor.reset(Reset(self.DEPS, ())) is False

    def test_ccs_executor_reset_matches_fresh_start(self):
        source = "Machine = coin.(tea.Machine + coffee.Machine)\nMachine"
        defs, initial = parse_definitions(source)

        def fresh():
            executor = CCSExecutor(initial, defs, tau_period_ms=250.0,
                                   tau_seed=9)
            executor.start(Start(frozenset({"coin", "tea"}), ()))
            return executor

        def drive(executor):
            stream = list(executor.drain())
            executor.pass_time(600.0)
            stream.extend(executor.drain())
            return stream

        reference = drive(fresh())
        warm = fresh()
        drive(warm)
        assert warm.reset(Reset(frozenset({"coin", "tea"}), ())) is True
        assert drive(warm) == reference
        assert warm.now_ms == 600.0  # the post-reset drive, from zero


class TestRunnerLevelEquivalence:
    def _runner(self):
        spec = load_eggtimer_spec().check_named("safety")
        return Runner(spec, lambda: DomExecutor(egg_timer_app()), QUICK)

    def test_leased_tests_match_cold_tests(self):
        runner = self._runner()
        cold = [runner.run_single_test(random.Random(f"3/{i}"))
                for i in range(3)]
        cache = ExecutorCache()
        leases = []
        warm = []
        for i in range(3):
            lease = cache.lease(runner.executor_factory)
            leases.append(lease)
            warm.append(
                runner.run_single_test(random.Random(f"3/{i}"), lease=lease)
            )
        assert not leases[0].warm and leases[1].warm and leases[2].warm
        for a, b in zip(cold, warm):
            assert a.verdict == b.verdict
            assert a.actions == b.actions
            assert a.states_observed == b.states_observed
            assert a.elapsed_virtual_ms == b.elapsed_virtual_ms
            assert a.trace == b.trace


class TestBatchEquivalence:
    """check_many: warm == cold at every pool width."""

    def _run(self, reuse, jobs):
        reporter = RecordingReporter()
        batch = CheckSession(reporters=[reporter]).check_many(
            three_targets(),
            session=SessionConfig(jobs=jobs, reuse_executors=reuse),
        )
        return batch, reporter

    def test_serial_warm_equals_serial_cold(self):
        warm, warm_events = self._run(reuse=True, jobs=1)
        cold, cold_events = self._run(reuse=False, jobs=1)
        assert_batches_identical(cold.outcomes, warm.outcomes)
        assert warm_events.events == cold_events.events

    def test_pooled_warm_equals_serial_cold(self):
        warm, warm_events = self._run(reuse=True, jobs=3)
        cold, cold_events = self._run(reuse=False, jobs=1)
        assert_batches_identical(cold.outcomes, warm.outcomes)
        assert warm_events.events == cold_events.events

    def test_serial_reuse_counts_warm_hits(self):
        warm, _ = self._run(reuse=True, jobs=1)
        metrics = warm.metrics
        total_tests = sum(o.result.tests_run for o in warm.outcomes)
        # One cold start per target, then every further test is warm.
        assert metrics.cold_starts == len(warm.outcomes)
        assert metrics.warm_hits == total_tests - len(warm.outcomes)
        assert metrics.warm_hits > 0

    def test_cold_baseline_reports_no_warm_hits(self):
        cold, _ = self._run(reuse=False, jobs=1)
        assert cold.metrics.warm_hits == 0
        assert cold.metrics.cold_starts > 0

    def test_pooled_reuse_still_counts_executor_checkouts(self):
        warm, _ = self._run(reuse=True, jobs=2)
        metrics = warm.metrics
        completed = metrics.tasks_completed - metrics.tasks_skipped
        assert metrics.warm_hits + metrics.cold_starts == completed
        assert metrics.transport in ("fork", "thread")


class TestManyPropertiesOneApp:
    """check_all rides the scheduler; warm reuse crosses properties."""

    def test_check_all_warm_equals_cold(self):
        module = load_eggtimer_spec()
        warm = CheckSession(egg_timer_app()).check_all(
            module, config=QUICK,
            session=SessionConfig(reuse_executors=True),
        )
        cold = CheckSession(egg_timer_app()).check_all(
            module, config=QUICK,
            session=SessionConfig(reuse_executors=False),
        )
        assert [r.property_name for r in warm] == [
            r.property_name for r in cold
        ]
        for a, b in zip(warm, cold):
            assert a.passed == b.passed
            assert [t.verdict for t in a.results] == [
                t.verdict for t in b.results
            ]
            assert [t.actions for t in a.results] == [
                t.actions for t in b.results
            ]

    def test_check_all_pooled_equals_serial(self):
        module = load_eggtimer_spec()
        serial = CheckSession(egg_timer_app()).check_all(
            module, config=QUICK, session=SessionConfig(jobs=1)
        )
        pooled = CheckSession(egg_timer_app()).check_all(
            module, config=QUICK, session=SessionConfig(jobs=3)
        )
        for a, b in zip(serial, pooled):
            assert a.passed == b.passed
            assert [t.verdict for t in a.results] == [
                t.verdict for t in b.results
            ]

    def test_one_warm_up_spans_all_properties(self):
        """The session's single app factory is the cache key, so only
        the very first test of the whole batch starts cold (serially)."""
        session = CheckSession(egg_timer_app())
        checks = load_eggtimer_spec().checks
        batch = session.check_many(
            [CheckTarget(check.name, spec=check) for check in checks],
            config=QUICK, session=SessionConfig(jobs=1),
        )
        total_tests = sum(o.result.tests_run for o in batch.outcomes)
        assert batch.metrics.cold_starts == 1
        assert batch.metrics.warm_hits == total_tests - 1

    def test_check_all_without_app_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="without an application"):
            CheckSession().check_all(load_eggtimer_spec(), config=QUICK)


class TestLeaseTypeExport:
    def test_lease_objects_are_the_documented_type(self):
        cache = ExecutorCache()
        lease = cache.lease(lambda: None)
        assert isinstance(lease, ExecutorLease)
