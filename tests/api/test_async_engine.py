"""AsyncEngine equivalence: multiplexed sessions are observationally
serial.

Same acceptance bar as the parallel engine (see
``test_engines.py``): for the same seed, the async engine must agree
with the serial loop bit-for-bit -- verdicts, counterexamples, per-test
results, ``tests_run``, and the reporter event stream -- no matter the
concurrency, the latency injected, or whether a warm executor cache is
in play.  On top of that it must actually *overlap* the injected
latency (that is the point) and report the in-flight gauges that prove
it did.
"""

import pytest

from repro.api import AsyncEngine, PoolMetrics, SerialEngine
from repro.api.lease import ExecutorCache
from repro.apps.eggtimer import egg_timer_app
from repro.checker import Runner, RunnerConfig
from repro.executors import DomExecutor, LatencyExecutor
from repro.fuzz.oracles import RecordingReporter
from repro.specs import load_eggtimer_spec

from .test_engines import assert_campaigns_identical


def eggtimer_runner(seed, tests=4, shrink=False, decrement=1,
                    stop_on_failure=True):
    spec = load_eggtimer_spec().check_named("safety")
    config = RunnerConfig(tests=tests, scheduled_actions=15,
                          demand_allowance=10, seed=seed, shrink=shrink,
                          stop_on_failure=stop_on_failure)
    return Runner(
        spec, lambda: DomExecutor(egg_timer_app(decrement=decrement)), config
    )


class TestAsyncEquivalence:
    @pytest.mark.parametrize("concurrency", [1, 3, 16])
    def test_passing_campaign(self, concurrency):
        runner = eggtimer_runner(seed=7)
        serial = SerialEngine().run(runner)
        multiplexed = AsyncEngine(concurrency=concurrency).run(runner)
        assert_campaigns_identical(serial, multiplexed)
        assert serial.tests_run == 4

    def test_failing_campaign_with_shrinking(self):
        runner = eggtimer_runner(seed=7, tests=5, shrink=True, decrement=2)
        serial = SerialEngine().run(runner)
        multiplexed = AsyncEngine(concurrency=4).run(runner)
        assert not serial.passed
        assert_campaigns_identical(serial, multiplexed)

    def test_latency_injection_changes_nothing(self):
        runner = eggtimer_runner(seed=3, tests=6)
        serial = SerialEngine().run(runner)
        delayed = AsyncEngine(
            concurrency=6,
            wrap=lambda ex: LatencyExecutor(ex, latency_ms=2, seed=5),
        ).run(runner)
        assert_campaigns_identical(serial, delayed)

    def test_warm_cache_changes_nothing(self):
        runner = eggtimer_runner(seed=11, tests=6)
        serial = SerialEngine().run(runner)
        cache = ExecutorCache(enabled=True, depth=3)
        try:
            cached = AsyncEngine(concurrency=3).run(runner, cache=cache)
        finally:
            cache.close()
        assert_campaigns_identical(serial, cached)

    def test_reporter_streams_are_identical(self):
        runner = eggtimer_runner(seed=5, tests=5, shrink=True, decrement=2)
        serial_rec, async_rec = RecordingReporter(), RecordingReporter()
        SerialEngine().run(runner, [serial_rec])
        AsyncEngine(concurrency=4).run(runner, [async_rec])
        assert serial_rec.events == async_rec.events

    def test_continue_after_failure_keeps_all_results(self):
        runner = eggtimer_runner(seed=7, tests=5, decrement=2,
                                 stop_on_failure=False)
        serial = SerialEngine().run(runner)
        multiplexed = AsyncEngine(concurrency=5).run(runner)
        assert serial.tests_run == 5
        assert_campaigns_identical(serial, multiplexed)


class TestAsyncMetrics:
    def test_inflight_gauges_prove_overlap(self):
        # 6 tests x ~5 ms injected latency on concurrency 6: at some
        # sampled instant most sessions must have been in flight, and
        # the loop must have spent most of its active time awaiting.
        metrics = PoolMetrics(jobs=6, transport="async")
        runner = eggtimer_runner(seed=2, tests=6)
        AsyncEngine(
            concurrency=6,
            wrap=lambda ex: LatencyExecutor(ex, latency_ms=5, seed=1),
            metrics=metrics,
        ).run(runner)
        assert metrics.inflight_sessions >= 2
        assert metrics.inflight_sessions <= 6
        assert metrics.mean_concurrency > 1.0
        assert metrics.session_active_s > 0.0
        assert metrics.await_ratio > 0.5

    def test_concurrency_one_never_overlaps(self):
        metrics = PoolMetrics(jobs=1, transport="async")
        runner = eggtimer_runner(seed=2, tests=3)
        AsyncEngine(concurrency=1, metrics=metrics).run(runner)
        assert metrics.inflight_sessions == 1
        assert metrics.mean_concurrency <= 1.0

    def test_snapshot_carries_the_gauges(self):
        metrics = PoolMetrics(jobs=2, transport="async")
        runner = eggtimer_runner(seed=2, tests=2)
        AsyncEngine(concurrency=2, metrics=metrics).run(runner)
        snapshot = metrics.to_dict()
        for key in ("inflight_sessions", "mean_concurrency",
                    "session_active_s", "await_ratio"):
            assert key in snapshot


class TestAsyncConfiguration:
    def test_rejects_non_positive_concurrency(self):
        with pytest.raises(ValueError):
            AsyncEngine(concurrency=0)
        with pytest.raises(ValueError):
            AsyncEngine(concurrency=-2)

    def test_run_async_composes_with_an_outer_loop(self):
        import asyncio

        runner = eggtimer_runner(seed=9, tests=2)
        serial = SerialEngine().run(runner)

        async def drive():
            return await AsyncEngine(concurrency=2).run_async(runner)

        assert_campaigns_identical(serial, asyncio.run(drive()))
