"""The CheckSession facade: spec resolution, executor coercion, engines."""

import pytest

from repro.api import CheckSession, ParallelEngine, SerialEngine
from repro.apps.eggtimer import egg_timer_app
from repro.checker import RunnerConfig, Runner
from repro.executors import CCSExecutor, DomExecutor, parse_definitions
from repro.specs import load_eggtimer_spec, spec_path
from repro.specstrom import load_module

QUICK = RunnerConfig(tests=2, scheduled_actions=8, demand_allowance=5,
                     seed=3, shrink=False)


class TestSpecResolution:
    def test_check_spec_passthrough(self):
        spec = load_eggtimer_spec().check_named("safety")
        result = CheckSession(egg_timer_app()).check(spec, config=QUICK)
        assert result.property_name == "safety"
        assert result.passed

    def test_module_with_property(self):
        module = load_eggtimer_spec()
        result = CheckSession(egg_timer_app()).check(
            module, property="safety", config=QUICK
        )
        assert result.property_name == "safety"

    def test_path_with_property(self):
        result = CheckSession(egg_timer_app()).check(
            spec_path("eggtimer.strom"), property="safety", config=QUICK
        )
        assert result.property_name == "safety"
        assert result.passed

    def test_single_check_module_needs_no_property(self):
        module = load_module(
            """
            let ~thereIsAToggle = count(`#toggle`) >= 0;
            action poke! = click!(`#toggle`);
            let ~prop = always{3} thereIsAToggle;
            check prop;
            """
        )
        result = CheckSession(egg_timer_app()).check(module, config=QUICK)
        assert result.property_name == "prop"

    def test_ambiguous_module_rejected(self):
        module = load_eggtimer_spec()  # three properties
        with pytest.raises(ValueError, match="pass property="):
            CheckSession(egg_timer_app()).check(module, config=QUICK)

    def test_unknown_property_rejected(self):
        with pytest.raises(KeyError):
            CheckSession(egg_timer_app()).check(
                load_eggtimer_spec(), property="bogus", config=QUICK
            )

    def test_mismatched_property_on_check_spec_rejected(self):
        spec = load_eggtimer_spec().check_named("safety")
        with pytest.raises(ValueError, match="does not match"):
            CheckSession(egg_timer_app()).check(
                spec, property="liveness", config=QUICK
            )

    def test_non_spec_rejected(self):
        with pytest.raises(TypeError):
            CheckSession(egg_timer_app()).check(42, config=QUICK)

    def test_check_all_runs_every_property(self):
        results = CheckSession(egg_timer_app()).check_all(
            load_eggtimer_spec(), config=QUICK
        )
        assert [r.property_name for r in results] == [
            "safety", "liveness", "timeUp",
        ]


class TestExecutorCoercion:
    def test_app_factory_wrapped_in_dom_executor(self):
        session = CheckSession(egg_timer_app())
        executor = session.executor_factory()
        assert isinstance(executor, DomExecutor)

    def test_zero_arg_callable_is_executor_factory(self):
        defs, initial = parse_definitions("Idle = coin.Idle\nIdle")
        session = CheckSession(lambda: CCSExecutor(initial, defs))
        executor = session.executor_factory()
        assert isinstance(executor, CCSExecutor)

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError):
            CheckSession("not a factory")


class TestEngineSelection:
    def test_default_engine_is_serial(self):
        assert isinstance(CheckSession(egg_timer_app()).engine, SerialEngine)

    def test_jobs_selects_parallel(self):
        session = CheckSession(egg_timer_app(), jobs=4)
        assert isinstance(session.engine, ParallelEngine)
        assert session.engine.jobs == 4

    def test_jobs_one_stays_serial(self):
        assert isinstance(
            CheckSession(egg_timer_app(), jobs=1).engine, SerialEngine
        )

    def test_engine_and_jobs_conflict(self):
        with pytest.raises(ValueError, match="not both"):
            CheckSession(egg_timer_app(), engine=SerialEngine(), jobs=2)

    def test_explicit_engine_used(self):
        engine = ParallelEngine(jobs=2)
        session = CheckSession(egg_timer_app(), engine=engine)
        assert session.engine is engine


class TestRunnerAccess:
    def test_runner_exposes_single_test_engine(self):
        session = CheckSession(egg_timer_app())
        runner = session.runner(load_eggtimer_spec(), property="safety",
                                config=QUICK)
        assert isinstance(runner, Runner)
        assert runner.spec.name == "safety"


class TestLegacyCompat:
    def test_runner_run_still_works(self):
        """Runner.run() (deprecated) delegates to the serial engine."""
        spec = load_eggtimer_spec().check_named("safety")
        runner = Runner(spec, lambda: DomExecutor(egg_timer_app()), QUICK)
        legacy = runner.run()
        modern = CheckSession(egg_timer_app()).check(spec, config=QUICK)
        assert [r.verdict for r in legacy.results] == [
            r.verdict for r in modern.results
        ]
        assert [r.actions for r in legacy.results] == [
            r.actions for r in modern.results
        ]
