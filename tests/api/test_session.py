"""The CheckSession facade: spec resolution, executor coercion, engines."""

import pytest

from repro.api import CheckSession, ParallelEngine, SerialEngine
from repro.apps.eggtimer import egg_timer_app
from repro.checker import RunnerConfig, Runner
from repro.executors import CCSExecutor, DomExecutor, parse_definitions
from repro.specs import load_eggtimer_spec, spec_path
from repro.specstrom import load_module

QUICK = RunnerConfig(tests=2, scheduled_actions=8, demand_allowance=5,
                     seed=3, shrink=False)


class TestSpecResolution:
    def test_check_spec_passthrough(self):
        spec = load_eggtimer_spec().check_named("safety")
        result = CheckSession(egg_timer_app()).check(spec, config=QUICK)
        assert result.property_name == "safety"
        assert result.passed

    def test_module_with_property(self):
        module = load_eggtimer_spec()
        result = CheckSession(egg_timer_app()).check(
            module, property="safety", config=QUICK
        )
        assert result.property_name == "safety"

    def test_path_with_property(self):
        result = CheckSession(egg_timer_app()).check(
            spec_path("eggtimer.strom"), property="safety", config=QUICK
        )
        assert result.property_name == "safety"
        assert result.passed

    def test_single_check_module_needs_no_property(self):
        module = load_module(
            """
            let ~thereIsAToggle = count(`#toggle`) >= 0;
            action poke! = click!(`#toggle`);
            let ~prop = always{3} thereIsAToggle;
            check prop;
            """
        )
        result = CheckSession(egg_timer_app()).check(module, config=QUICK)
        assert result.property_name == "prop"

    def test_ambiguous_module_rejected(self):
        module = load_eggtimer_spec()  # three properties
        with pytest.raises(ValueError, match="pass property="):
            CheckSession(egg_timer_app()).check(module, config=QUICK)

    def test_unknown_property_rejected(self):
        with pytest.raises(KeyError):
            CheckSession(egg_timer_app()).check(
                load_eggtimer_spec(), property="bogus", config=QUICK
            )

    def test_mismatched_property_on_check_spec_rejected(self):
        spec = load_eggtimer_spec().check_named("safety")
        with pytest.raises(ValueError, match="does not match"):
            CheckSession(egg_timer_app()).check(
                spec, property="liveness", config=QUICK
            )

    def test_non_spec_rejected(self):
        with pytest.raises(TypeError):
            CheckSession(egg_timer_app()).check(42, config=QUICK)

    def test_check_all_runs_every_property(self):
        results = CheckSession(egg_timer_app()).check_all(
            load_eggtimer_spec(), config=QUICK
        )
        assert [r.property_name for r in results] == [
            "safety", "liveness", "timeUp",
        ]


class TestExecutorCoercion:
    def test_app_factory_wrapped_in_dom_executor(self):
        session = CheckSession(egg_timer_app())
        executor = session.executor_factory()
        assert isinstance(executor, DomExecutor)

    def test_zero_arg_callable_is_executor_factory(self):
        defs, initial = parse_definitions("Idle = coin.Idle\nIdle")
        session = CheckSession(lambda: CCSExecutor(initial, defs))
        executor = session.executor_factory()
        assert isinstance(executor, CCSExecutor)

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError):
            CheckSession("not a factory")


class TestEngineSelection:
    def test_default_engine_is_serial(self):
        assert isinstance(CheckSession(egg_timer_app()).engine, SerialEngine)

    def test_jobs_selects_parallel(self):
        session = CheckSession(egg_timer_app(), jobs=4)
        assert isinstance(session.engine, ParallelEngine)
        assert session.engine.jobs == 4

    def test_jobs_one_stays_serial(self):
        assert isinstance(
            CheckSession(egg_timer_app(), jobs=1).engine, SerialEngine
        )

    def test_engine_and_jobs_conflict(self):
        with pytest.raises(ValueError, match="not both"):
            CheckSession(egg_timer_app(), engine=SerialEngine(), jobs=2)

    def test_explicit_engine_used(self):
        engine = ParallelEngine(jobs=2)
        session = CheckSession(egg_timer_app(), engine=engine)
        assert session.engine is engine


class TestRunnerAccess:
    def test_runner_exposes_single_test_engine(self):
        session = CheckSession(egg_timer_app())
        runner = session.runner(load_eggtimer_spec(), property="safety",
                                config=QUICK)
        assert isinstance(runner, Runner)
        assert runner.spec.name == "safety"


class TestLegacyCompat:
    def test_runner_run_still_works(self):
        """Runner.run() (deprecated) delegates to the serial engine."""
        spec = load_eggtimer_spec().check_named("safety")
        runner = Runner(spec, lambda: DomExecutor(egg_timer_app()), QUICK)
        legacy = runner.run()
        modern = CheckSession(egg_timer_app()).check(spec, config=QUICK)
        assert [r.verdict for r in legacy.results] == [
            r.verdict for r in modern.results
        ]
        assert [r.actions for r in legacy.results] == [
            r.actions for r in modern.results
        ]


class TestSpecModuleMemoization:
    """The session's ``SpecResolver`` runs the front end once per spec
    *content*: batches share one parse across property overrides, and
    repeated check() calls on an unchanged file are memo hits."""

    def _counting_front_end(self, monkeypatch):
        import repro.artifact.resolver as resolver_module

        calls = []
        original = resolver_module.compile_source

        def counting(source, **kwargs):
            calls.append(kwargs.get("source_path"))
            return original(source, **kwargs)

        monkeypatch.setattr(resolver_module, "compile_source", counting)
        return calls

    def test_property_overrides_share_one_parse(self, monkeypatch):
        from repro.api import CheckTarget, SessionConfig

        calls = self._counting_front_end(monkeypatch)
        batch = CheckSession(egg_timer_app()).check_many(
            [
                CheckTarget("safety-a", property="safety"),
                CheckTarget("liveness-b", property="liveness"),
                CheckTarget("safety-c", property="safety"),
            ],
            spec=spec_path("eggtimer.strom"),
            config=QUICK,
            session=SessionConfig(jobs=1),
        )
        assert len(batch) == 3
        assert len(calls) == 1

    def test_mixed_batch_shares_one_parse_too(self, monkeypatch):
        from repro.api import CheckTarget, SessionConfig

        calls = self._counting_front_end(monkeypatch)
        CheckSession(egg_timer_app()).check_many(
            [
                CheckTarget("plain"),  # batch spec + batch property
                CheckTarget("override", property="liveness"),
            ],
            spec=spec_path("eggtimer.strom"),
            property="safety",
            config=QUICK,
            session=SessionConfig(jobs=1),
        )
        assert len(calls) == 1

    def test_unchanged_file_is_a_memo_hit_but_edits_recompile(
        self, monkeypatch, tmp_path
    ):
        """The memo keys on content, not call boundaries: re-checking
        an unchanged file skips the front end, while an edit under the
        same path recompiles (never a stale serve)."""
        calls = self._counting_front_end(monkeypatch)
        spec_file = tmp_path / "egg.strom"
        source = open(spec_path("eggtimer.strom")).read()
        spec_file.write_text(source)
        session = CheckSession(egg_timer_app())
        session.check(str(spec_file), property="safety", config=QUICK)
        session.check(str(spec_file), property="safety", config=QUICK)
        assert len(calls) == 1  # memo hit on identical bytes
        spec_file.write_text(source + "\n// touched\n")
        session.check(str(spec_file), property="safety", config=QUICK)
        assert len(calls) == 2  # edited content recompiles


class TestCustomEngineHonoured:
    def test_check_all_runs_a_custom_engine_per_property(self):
        """engine= is an extension point; check_all's scheduler fast
        path must only replace the built-in engines."""
        from repro.api import CampaignEngine, SerialEngine

        class CountingEngine(CampaignEngine):
            def __init__(self):
                self.runs = []
                self._serial = SerialEngine()

            def run(self, runner, reporters=(), cache=None):
                self.runs.append(runner.spec.name)
                return self._serial.run(runner, reporters)

        engine = CountingEngine()
        session = CheckSession(egg_timer_app(), engine=engine)
        results = session.check_all(load_eggtimer_spec(), config=QUICK)
        assert engine.runs == ["safety", "liveness", "timeUp"]
        assert [r.property_name for r in results] == engine.runs


class TestSessionConfig:
    """The consolidated knob bundle and its deprecation shims."""

    def _spec(self):
        return load_eggtimer_spec().check_named("safety")

    def test_defaults(self):
        from repro.api import SessionConfig

        cfg = SessionConfig()
        assert cfg.jobs is None
        assert cfg.transport is None
        assert cfg.reuse_executors is True
        assert cfg.reporters is None
        assert (cfg.stop_on_failure, cfg.narrow_queries, cfg.shrink) == \
               (None, None, None)

    def test_runner_config_overlay(self):
        from repro.api import SessionConfig

        base = RunnerConfig(tests=5, shrink=True)
        # No overrides: the base comes back untouched (same object).
        assert SessionConfig().runner_config(base) is base
        overlaid = SessionConfig(shrink=False,
                                 stop_on_failure=False).runner_config(base)
        assert overlaid.shrink is False
        assert overlaid.stop_on_failure is False
        assert overlaid.tests == 5          # untouched fields survive
        assert base.shrink is True          # the base is not mutated
        # A None base overlays onto the default RunnerConfig.
        from_none = SessionConfig(narrow_queries=False).runner_config(None)
        assert from_none.narrow_queries is False

    def test_merged_returns_an_updated_copy(self):
        from repro.api import SessionConfig

        cfg = SessionConfig(jobs=2)
        updated = cfg.merged(jobs=4, reuse_executors=False)
        assert (updated.jobs, updated.reuse_executors) == (4, False)
        assert cfg.jobs == 2  # original untouched

    def test_session_kwarg_does_not_warn(self, recwarn):
        import warnings

        from repro.api import SessionConfig

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            batch = CheckSession(egg_timer_app()).check_many(
                [("egg", egg_timer_app())], spec=self._spec(), config=QUICK,
                session=SessionConfig(jobs=1, reuse_executors=False),
            )
        assert batch.passed

    def test_legacy_bare_kwargs_are_gone(self):
        """The one-release ``DeprecationWarning`` shims for bare
        ``jobs=`` / ``reuse_executors=`` / ``reporters=`` on the check
        methods were removed; ``session=SessionConfig(...)`` is the
        only spelling now."""
        session = CheckSession(egg_timer_app())
        for kwargs in ({"jobs": 1}, {"reuse_executors": False},
                       {"reporters": []}):
            with pytest.raises(TypeError):
                session.check_many(
                    [("egg", egg_timer_app())], spec=self._spec(),
                    config=QUICK, **kwargs,
                )
        with pytest.raises(TypeError):
            session.check_all(load_eggtimer_spec(), config=QUICK, jobs=1)

    def test_session_config_is_the_only_spelling(self):
        from repro.api import Reporter, SessionConfig

        seen = []

        class Probe(Reporter):
            api_version = 2

            def on_session_end(self, outcomes, metrics=None):
                seen.append(len(outcomes))

        batch = CheckSession(egg_timer_app()).check_many(
            [("egg", egg_timer_app())], spec=self._spec(), config=QUICK,
            session=SessionConfig(jobs=1, reuse_executors=False,
                                  reporters=[Probe()]),
        )
        assert batch.passed
        assert batch.metrics.jobs == 1
        assert batch.metrics.warm_hits == 0  # reuse really was off
        assert seen == [1]

    def test_config_runner_overrides_reach_the_campaign(self):
        from repro.api import SessionConfig

        spec = self._spec()
        cfg = RunnerConfig(tests=2, scheduled_actions=8, demand_allowance=5,
                           seed=3, shrink=True)
        batch = CheckSession(egg_timer_app(decrement=2)).check_many(
            [("faulty", egg_timer_app(decrement=2))], spec=spec, config=cfg,
            session=SessionConfig(jobs=1, shrink=False),
        )
        result = batch[0].result
        assert not result.passed
        # shrink=False overlay: a counterexample, but no shrunk one.
        assert result.counterexample is not None
        assert result.shrunk_counterexample is None

    def test_check_accepts_a_session_config(self):
        from repro.api import SessionConfig

        result = CheckSession(egg_timer_app()).check(
            self._spec(), config=QUICK,
            session=SessionConfig(jobs=2, transport="thread"),
        )
        assert result.passed
        assert result.tests_run == QUICK.tests
