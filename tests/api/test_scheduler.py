"""Cross-campaign orchestration: check_many on one shared pool.

The acceptance bar mirrors the engine equivalence suite one level up:
a pooled multi-campaign audit must be *observationally identical* to
running each campaign serially with the same seed -- same verdicts,
same per-test results, same counterexamples, same deterministic
reporter event stream.
"""

import pytest

from repro.api import (
    CampaignSet,
    CampaignSetResult,
    CheckSession,
    CheckTarget,
    PooledScheduler,
    Reporter,
    SessionConfig,
    WorkerCrashed,
)
from repro.apps.eggtimer import egg_timer_app
from repro.apps.todomvc import implementation_named
from repro.checker import Runner, RunnerConfig
from repro.executors import DomExecutor
from repro.specs import load_eggtimer_spec, load_todomvc_spec


def eggtimer_config(**overrides):
    defaults = dict(tests=4, scheduled_actions=15, demand_allowance=10,
                    seed=7, shrink=False)
    defaults.update(overrides)
    return RunnerConfig(**defaults)


def three_targets():
    """The audit shape: a passing, a failing-fast and a failing-slow
    campaign, on two different applications."""
    return [
        CheckTarget("eggtimer-ok", egg_timer_app(),
                    spec=load_eggtimer_spec().check_named("safety"),
                    config=eggtimer_config()),
        CheckTarget("eggtimer-faulty", egg_timer_app(decrement=2),
                    spec=load_eggtimer_spec().check_named("safety"),
                    config=eggtimer_config(tests=5, scheduled_actions=20,
                                           shrink=True)),
        CheckTarget("todomvc-polymer",
                    implementation_named("polymer").app_factory(),
                    spec=load_todomvc_spec(
                        default_subscript=40).check_named("safety"),
                    config=RunnerConfig(tests=6, scheduled_actions=40,
                                        demand_allowance=20, seed=2,
                                        shrink=False)),
    ]


def assert_batches_identical(serial, pooled):
    assert len(serial) == len(pooled)
    for left, right in zip(serial, pooled):
        assert left.target == right.target
        a, b = left.result, right.result
        assert a.passed == b.passed, left.target
        assert a.tests_run == b.tests_run, left.target
        assert [r.verdict for r in a.results] == [
            r.verdict for r in b.results
        ], left.target
        assert [r.actions for r in a.results] == [
            r.actions for r in b.results
        ], left.target
        if a.counterexample is None:
            assert b.counterexample is None
        else:
            assert a.counterexample.actions == b.counterexample.actions
        if a.shrunk_counterexample is None:
            assert b.shrunk_counterexample is None
        else:
            assert (
                a.shrunk_counterexample.actions
                == b.shrunk_counterexample.actions
            )


class RecordingReporter(Reporter):
    def __init__(self):
        self.events = []

    def on_session_start(self, campaigns):
        self.events.append(("session_start", campaigns))

    def on_campaign_start(self, property_name, tests, target=None):
        self.events.append(("campaign_start", property_name, tests, target))

    def on_test_start(self, property_name, index, seed):
        self.events.append(("test_start", index, seed))

    def on_test_end(self, property_name, index, result):
        self.events.append(("test_end", index, result.passed))

    def on_counterexample(self, property_name, counterexample, shrunk):
        self.events.append(("counterexample", len(counterexample.actions)))

    def on_campaign_end(self, result):
        self.events.append(("campaign_end", result.property_name,
                            result.tests_run))

    def on_session_end(self, outcomes):
        self.events.append(
            ("session_end", [(target, r.passed) for target, r in outcomes])
        )


class TestPooledEqualsSerial:
    """The acceptance criterion: >= 3 campaigns on a shared pool yield
    verdicts identical to sequential runs with the same seed."""

    def test_three_campaigns_identical_verdicts(self):
        targets = three_targets()
        serial = CheckSession().check_many(targets, session=SessionConfig(jobs=1))
        pooled = CheckSession().check_many(targets, session=SessionConfig(jobs=3))
        assert_batches_identical(serial, pooled)
        assert [outcome.passed for outcome in pooled] == [True, False, False]

    def test_check_many_agrees_with_individual_check_calls(self):
        targets = three_targets()
        pooled = CheckSession().check_many(targets, session=SessionConfig(jobs=2))
        for target, outcome in zip(targets, pooled):
            single = CheckSession(target.app).check(
                target.spec, config=target.config
            )
            assert single.passed == outcome.result.passed
            assert single.tests_run == outcome.result.tests_run
            assert [r.verdict for r in single.results] == [
                r.verdict for r in outcome.result.results
            ]

    def test_reporter_event_stream_is_deterministic(self):
        targets = three_targets()
        serial, pooled = RecordingReporter(), RecordingReporter()
        CheckSession(reporters=[serial]).check_many(targets, session=SessionConfig(jobs=1))
        CheckSession(reporters=[pooled]).check_many(targets, session=SessionConfig(jobs=3))
        assert serial.events == pooled.events
        kinds = [event[0] for event in pooled.events]
        assert kinds[0] == "session_start"
        assert kinds[-1] == "session_end"
        starts = [e for e in pooled.events if e[0] == "campaign_start"]
        assert [target for _, _, _, target in starts] == [
            "eggtimer-ok", "eggtimer-faulty", "todomvc-polymer",
        ]


class TestTargetCoercion:
    def test_tuple_and_callable_targets(self):
        spec = load_eggtimer_spec().check_named("safety")
        batch = CheckSession().check_many(
            [("timer-a", egg_timer_app()), egg_timer_app()],
            spec=spec, config=eggtimer_config(tests=2),
            session=SessionConfig(jobs=1),
        )
        assert [outcome.target for outcome in batch][0] == "timer-a"
        assert batch.passed

    def test_session_app_is_the_default_target_app(self):
        spec = load_eggtimer_spec()
        batch = CheckSession(egg_timer_app()).check_many(
            [CheckTarget("safety-run", property="safety"),
             CheckTarget("liveness-run", property="liveness")],
            spec=spec, config=eggtimer_config(tests=2),
            session=SessionConfig(jobs=1),
        )
        assert [o.result.property_name for o in batch] == [
            "safety", "liveness",
        ]

    def test_target_without_app_or_session_app_rejected(self):
        with pytest.raises(ValueError, match="has no app"):
            CheckSession().check_many(
                [CheckTarget("nameless")],
                spec=load_eggtimer_spec().check_named("safety"),
            )

    def test_target_without_any_spec_rejected(self):
        with pytest.raises(ValueError, match="no spec"):
            CheckSession().check_many([CheckTarget("x", egg_timer_app())])

    def test_bogus_target_rejected(self):
        with pytest.raises(TypeError, match="targets must be"):
            CheckSession().check_many(
                [42], spec=load_eggtimer_spec().check_named("safety")
            )

    def test_appless_session_check_rejected(self):
        with pytest.raises(ValueError, match="without an application"):
            CheckSession().check(load_eggtimer_spec().check_named("safety"))


class TestCampaignSet:
    def test_duplicate_labels_deduplicated(self):
        spec = load_eggtimer_spec().check_named("safety")
        runner = Runner(spec, lambda: DomExecutor(egg_timer_app()),
                        eggtimer_config(tests=1))
        campaigns = CampaignSet()
        assert campaigns.add("timer", runner) == "timer"
        assert campaigns.add("timer", runner) == "timer#2"
        assert len(campaigns) == 2

    def test_dedup_survives_explicit_collisions(self):
        spec = load_eggtimer_spec().check_named("safety")
        runner = Runner(spec, lambda: DomExecutor(egg_timer_app()),
                        eggtimer_config(tests=1))
        campaigns = CampaignSet()
        assert campaigns.add("x", runner) == "x"
        assert campaigns.add("x#2", runner) == "x#2"
        # The dedup of a repeated "x" must skip the taken "x#2".
        assert campaigns.add("x", runner) == "x#3"
        labels = [label for label, _ in campaigns]
        assert len(set(labels)) == 3

    def test_set_result_helpers(self):
        batch = CheckSession().check_many(
            three_targets()[:2], session=SessionConfig(jobs=1)
        )
        assert isinstance(batch, CampaignSetResult)
        assert len(batch) == 2
        assert not batch.passed
        assert [o.target for o in batch.failures] == ["eggtimer-faulty"]
        assert "1 passed, 1 failed" in batch.summary()
        assert batch[0].result is batch.results[0]


class TestSchedulerConfiguration:
    def test_rejects_non_positive_jobs(self):
        with pytest.raises(ValueError):
            PooledScheduler(jobs=0)
        with pytest.raises(ValueError, match="at least 1"):
            CheckSession().check_many(
                three_targets()[:1], session=SessionConfig(jobs=0)
            )

    def test_session_jobs_is_the_default_pool_width(self, monkeypatch):
        observed = {}
        original = PooledScheduler.__init__

        def spy(self, jobs=None, transport=None):
            observed["jobs"] = jobs
            original(self, jobs, transport=transport)

        monkeypatch.setattr(PooledScheduler, "__init__", spy)
        CheckSession(jobs=3).check_many(three_targets()[:1])
        assert observed["jobs"] == 3

    def test_explicit_parallel_engine_sets_the_pool_width(self, monkeypatch):
        from repro.api import ParallelEngine

        observed = {}
        original = PooledScheduler.__init__

        def spy(self, jobs=None, transport=None):
            observed["jobs"] = jobs
            original(self, jobs, transport=transport)

        monkeypatch.setattr(PooledScheduler, "__init__", spy)
        session = CheckSession(engine=ParallelEngine(jobs=5))
        session.check_many(three_targets()[:1])
        assert observed["jobs"] == 5


class TestCrashAttribution:
    def test_dead_campaign_is_named_with_its_index(self):
        """An executor that kills its worker mid-test is reported with
        the campaign label and test index it took down."""
        import os

        class KillerExecutor:
            def start(self, _start):
                os._exit(9)

        targets = three_targets()[:1] + [
            CheckTarget("killer", lambda: KillerExecutor(),
                        spec=load_eggtimer_spec().check_named("safety"),
                        config=eggtimer_config(tests=2)),
        ]
        with pytest.raises(WorkerCrashed) as excinfo:
            CheckSession().check_many(targets, session=SessionConfig(jobs=2))
        assert "killer" in str(excinfo.value)
        assert any(
            task_id[0] == "killer" for task_id in excinfo.value.in_flight
        )


class TestEngineMetrics:
    """Compiled-engine statistics flow from TestResults into PoolMetrics."""

    def _one_target(self):
        return [
            CheckTarget("eggtimer", egg_timer_app(),
                        spec=load_eggtimer_spec().check_named("safety"),
                        config=eggtimer_config(tests=2)),
        ]

    def _assert_engine_stats(self, metrics):
        assert metrics.intern_misses > 0
        assert metrics.intern_hits > 0
        assert 0.0 < metrics.intern_hit_ratio < 1.0
        assert metrics.max_formula_size > 0
        assert metrics.query_width_states > 0
        assert metrics.mean_query_width > 0.0

    def test_serial_batch_records_engine_stats(self):
        batch = CheckSession().check_many(self._one_target(), session=SessionConfig(jobs=1))
        self._assert_engine_stats(batch.metrics)

    def test_pooled_batch_records_engine_stats(self):
        batch = CheckSession().check_many(self._one_target(), session=SessionConfig(jobs=2))
        self._assert_engine_stats(batch.metrics)

    def test_engine_stats_are_in_the_json_payload(self):
        batch = CheckSession().check_many(self._one_target(), session=SessionConfig(jobs=1))
        payload = batch.metrics.to_dict()
        for key in ("intern_hits", "intern_misses", "intern_hit_ratio",
                    "max_formula_size", "mean_query_width"):
            assert key in payload
