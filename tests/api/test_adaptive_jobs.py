"""Adaptive pool width: the ``jobs="auto"`` heuristic and its wiring.

``suggest_jobs`` turns a finished batch's recorded queue-depth and
utilisation metrics into the next batch's width.  The exact decision
table is pinned here -- changing the heuristic must be a deliberate,
test-visible act, because audits tune their throughput around it.
"""

from repro.api import (
    AUTO_JOBS,
    CheckSession,
    PoolMetrics,
    SessionConfig,
    suggest_jobs,
)
from repro.checker import RunnerConfig
from repro.executors import CCSExecutor, parse_definitions
from repro.specstrom import load_module

SPEC = """
action coin! = ccs!("coin") when present(`coin`);
action tea!  = ccs!("tea")  when present(`tea`);
check always{4} (present(`coin`) || present(`tea`));
"""


def busy_metrics(jobs, queue_depth, utilisation):
    """A PoolMetrics snapshot with the given shape: ``jobs`` workers,
    ``queue_depth`` max backlog, every worker at ``utilisation``."""
    metrics = PoolMetrics(jobs=jobs, transport="fork")
    metrics.wall_s = 10.0
    for worker in range(jobs):
        metrics.worker_tasks[worker] = 5
        metrics.worker_busy_s[worker] = 10.0 * utilisation
    metrics.sample_queue_depth(queue_depth)
    return metrics


class TestSuggestJobsHeuristic:
    """The pinned decision table (see ``suggest_jobs``' docstring)."""

    def test_no_history_defaults_to_cpu_count(self):
        assert suggest_jobs(None, cpu=8) == 8

    def test_empty_metrics_default_to_cpu_count(self):
        assert suggest_jobs(PoolMetrics(jobs=4), cpu=8) == 8

    def test_deep_queue_and_busy_workers_double_the_width(self):
        metrics = busy_metrics(jobs=2, queue_depth=10, utilisation=0.9)
        assert suggest_jobs(metrics, cpu=16) == 4

    def test_scale_up_is_capped_at_the_cpu_count(self):
        metrics = busy_metrics(jobs=6, queue_depth=30, utilisation=0.9)
        assert suggest_jobs(metrics, cpu=8) == 8

    def test_deep_queue_alone_does_not_scale_up(self):
        # Backlog with idle workers means the merge (not width) is the
        # bottleneck; adding workers would not help.
        metrics = busy_metrics(jobs=2, queue_depth=10, utilisation=0.3)
        assert suggest_jobs(metrics, cpu=16) == 1  # idle: halved instead

    def test_busy_workers_with_a_shallow_queue_keep_the_width(self):
        metrics = busy_metrics(jobs=4, queue_depth=4, utilisation=0.9)
        assert suggest_jobs(metrics, cpu=16) == 4

    def test_idle_workers_halve_the_width(self):
        metrics = busy_metrics(jobs=8, queue_depth=2, utilisation=0.2)
        assert suggest_jobs(metrics, cpu=16) == 4

    def test_scale_down_floors_at_one(self):
        metrics = busy_metrics(jobs=1, queue_depth=0, utilisation=0.0)
        assert suggest_jobs(metrics, cpu=16) == 1

    def test_kept_width_is_clamped_to_the_cpu_count(self):
        metrics = busy_metrics(jobs=12, queue_depth=4, utilisation=0.6)
        assert suggest_jobs(metrics, cpu=4) == 4

    def test_utilisation_boundaries(self):
        # >= 0.75 counts as busy, < 0.40 as idle; between keeps.
        deep = 10
        assert suggest_jobs(busy_metrics(2, deep, 0.75), cpu=16) == 4
        assert suggest_jobs(busy_metrics(2, deep, 0.74), cpu=16) == 2
        assert suggest_jobs(busy_metrics(2, 2, 0.40), cpu=16) == 2
        assert suggest_jobs(busy_metrics(2, 2, 0.39), cpu=16) == 1


class TestSuggestJobsCapacity:
    """``capacity=`` replaces the CPU count as the clamp: a distributed
    fabric's width lives on its worker hosts, not on the coordinator."""

    def test_capacity_overrides_the_local_cpu_clamp(self):
        # A 1-CPU coordinator fronting a 16-slot TCP fabric must be
        # allowed to scale past its own core count.
        metrics = busy_metrics(jobs=4, queue_depth=20, utilisation=0.9)
        assert suggest_jobs(metrics, cpu=1, capacity=16) == 8

    def test_no_history_defaults_to_the_capacity(self):
        assert suggest_jobs(None, cpu=1, capacity=12) == 12

    def test_scale_up_is_capped_at_the_capacity(self):
        metrics = busy_metrics(jobs=6, queue_depth=30, utilisation=0.9)
        assert suggest_jobs(metrics, cpu=64, capacity=8) == 8

    def test_kept_width_is_clamped_to_the_capacity(self):
        metrics = busy_metrics(jobs=12, queue_depth=4, utilisation=0.6)
        assert suggest_jobs(metrics, cpu=64, capacity=4) == 4

    def test_capacity_none_falls_back_to_cpu(self):
        metrics = busy_metrics(jobs=6, queue_depth=30, utilisation=0.9)
        assert suggest_jobs(metrics, cpu=8, capacity=None) == 8

    def test_auto_session_clamps_to_transport_capacity(self):
        """AUTO_JOBS over a PoolTransport asks the *transport* for its
        capacity (pinned: a fat fake transport widens a 1-CPU box)."""
        from repro.api.session import _transport_capacity
        from repro.api.transport import ThreadTransport

        class FatTransport(ThreadTransport):
            def capacity(self):
                return 32

        assert _transport_capacity(FatTransport()) == 32
        assert _transport_capacity(None) is None
        assert _transport_capacity("fork") is None
        assert suggest_jobs(None, cpu=1,
                            capacity=FatTransport().capacity()) == 32


class TestMultiplexedCapacity:
    """``capacity()`` counts *sessions*, not processes: a transport
    whose workers multiplex ``concurrency`` sessions per slot reports
    slots x concurrency, and the ``--jobs auto`` clamp admits that full
    width -- an I/O-bound fabric is not bounded by coordinator cores."""

    def test_thread_transport_multiplies_by_concurrency(self):
        import os

        from repro.api.transport import ThreadTransport

        cpu = os.cpu_count() or 1
        assert ThreadTransport().capacity() == cpu
        assert ThreadTransport(concurrency=4).capacity() == cpu * 4

    def test_fork_transport_multiplies_by_concurrency(self):
        import multiprocessing
        import os

        from repro.api.transport import ForkTransport

        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            return
        cpu = os.cpu_count() or 1
        assert ForkTransport(ctx, concurrency=3).capacity() == cpu * 3

    def test_auto_clamp_admits_the_multiplexed_width(self):
        # 2 slots x concurrency 8 = 16 in-flight sessions on a 1-CPU
        # coordinator: doubling from 8 busy jobs reaches the full 16.
        metrics = busy_metrics(jobs=8, queue_depth=40, utilisation=0.9)
        assert suggest_jobs(metrics, cpu=1, capacity=2 * 8) == 16

    def test_auto_clamp_still_caps_at_the_multiplexed_width(self):
        metrics = busy_metrics(jobs=12, queue_depth=60, utilisation=0.95)
        assert suggest_jobs(metrics, cpu=64, capacity=3 * 4) == 12


class TestSessionAutoWiring:
    def _factory(self):
        defs, initial = parse_definitions(
            """
            Idle = coin.Choose
            Choose = tea.Idle
            Idle
            """
        )
        return lambda: CCSExecutor(initial, defs, tau_period_ms=0)

    def _config(self):
        return RunnerConfig(tests=2, scheduled_actions=4,
                            demand_allowance=4, seed=0, shrink=False)

    def test_auto_session_records_metrics_between_batches(self):
        spec = load_module(SPEC).checks[0]
        session = CheckSession(self._factory(), jobs=AUTO_JOBS)
        assert session.last_metrics is None
        first = session.check_many(
            [("a", self._factory()), ("b", self._factory())],
            spec=spec, config=self._config(),
        )
        assert first.passed
        assert session.last_metrics is first.metrics
        second = session.check_many(
            [("a", self._factory())], spec=spec, config=self._config()
        )
        assert session.last_metrics is second.metrics

    def test_auto_jobs_argument_on_check_many(self):
        spec = load_module(SPEC).checks[0]
        session = CheckSession(self._factory())
        batch = session.check_many(
            [("a", self._factory())], spec=spec, config=self._config(),
            session=SessionConfig(jobs=AUTO_JOBS),
        )
        assert batch.passed
        # The width actually used came from suggest_jobs(None) = CPU.
        assert batch.metrics.jobs == suggest_jobs(None)

    def test_explicit_jobs_still_validate(self):
        try:
            CheckSession(self._factory(), jobs=0)
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("jobs=0 must be rejected")


class TestCliJobsValue:
    def test_accepts_auto_and_integers(self):
        from repro.cli import _jobs_value

        assert _jobs_value("auto") == "auto"
        assert _jobs_value("3") == 3

    def test_rejects_non_positive(self):
        import argparse

        from repro.cli import _jobs_value

        try:
            _jobs_value("0")
        except argparse.ArgumentTypeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("0 must be rejected")


class TestSerialBacklogSignal:
    def test_serial_batches_record_queue_depth(self):
        """A width-1 batch must still record its backlog, or the auto
        heuristic could never scale back up from 1 (the scale-up
        condition reads max_queue_depth)."""
        from repro.api import CheckSession

        defs_factory = TestSessionAutoWiring()._factory()
        spec = load_module(SPEC).checks[0]
        config = RunnerConfig(tests=3, scheduled_actions=4,
                              demand_allowance=4, seed=0, shrink=False)
        batch = CheckSession().check_many(
            [("a", defs_factory), ("b", defs_factory)],
            spec=spec, config=config, session=SessionConfig(jobs=1),
        )
        # 2 campaigns x 3 tests: the first sample sees the whole batch.
        assert batch.metrics.max_queue_depth == 6
        # Busy serial workers with a deep backlog now scale up.
        assert suggest_jobs(batch.metrics, cpu=8) == 2


class TestJobsValidation:
    def test_typoed_auto_is_rejected_up_front(self):
        from repro.api import CheckSession

        for bogus in ("atuo", "Auto", ""):
            try:
                CheckSession(jobs=bogus)
            except ValueError as err:
                assert "auto" in str(err)
            else:  # pragma: no cover
                raise AssertionError(f"jobs={bogus!r} must be rejected")

    def test_typoed_auto_on_check_many_is_rejected(self):
        from repro.api import CheckSession, SessionConfig

        factory = TestSessionAutoWiring()._factory()
        spec = load_module(SPEC).checks[0]
        session = CheckSession(factory)
        try:
            session.check_many(
                [("a", factory)], spec=spec,
                session=SessionConfig(jobs="atuo"),
            )
        except ValueError as err:
            assert "auto" in str(err)
        else:  # pragma: no cover
            raise AssertionError(
                "check_many(session=SessionConfig(jobs='atuo')) "
                "must be rejected"
            )

    def test_non_integer_jobs_rejected(self):
        from repro.api import CheckSession

        factory = TestSessionAutoWiring()._factory()
        for bogus in (2.5, True):
            try:
                CheckSession(factory, jobs=bogus)
            except ValueError as err:
                assert "positive integer" in str(err)
            else:  # pragma: no cover
                raise AssertionError(f"jobs={bogus!r} must be rejected")
