"""Reporter hooks: lifecycle order, console output, JSONL records,
JUnit XML for CI, live progress."""

import io
import json
from xml.etree import ElementTree

import pytest

from repro.api import (
    ConsoleReporter,
    JsonlReporter,
    JUnitXmlReporter,
    ProgressReporter,
    Reporter,
    SerialEngine,
)
from repro.api import ParallelEngine
from repro.apps.eggtimer import egg_timer_app
from repro.checker import Runner, RunnerConfig
from repro.executors import DomExecutor
from repro.specs import load_eggtimer_spec


class RecordingReporter(Reporter):
    def __init__(self):
        self.events = []

    def on_test_start(self, property_name, index, seed):
        self.events.append(("test_start", index, seed))

    def on_test_end(self, property_name, index, result):
        self.events.append(("test_end", index, result.passed))

    def on_counterexample(self, property_name, counterexample, shrunk):
        self.events.append(("counterexample", len(counterexample.actions)))

    def on_campaign_end(self, result):
        self.events.append(("campaign_end", result.tests_run))


def eggtimer_runner(app_factory=None, **config_kwargs):
    spec = load_eggtimer_spec().check_named("safety")
    defaults = dict(tests=3, scheduled_actions=10, demand_allowance=5,
                    seed=1, shrink=False)
    defaults.update(config_kwargs)
    factory = app_factory or egg_timer_app()
    return Runner(spec, lambda: DomExecutor(factory), RunnerConfig(**defaults))


class TestLifecycle:
    def test_events_in_index_order(self):
        reporter = RecordingReporter()
        SerialEngine().run(eggtimer_runner(), [reporter])
        kinds = [e[0] for e in reporter.events]
        assert kinds == ["test_start", "test_end"] * 3 + ["campaign_end"]
        assert [e[1] for e in reporter.events if e[0] == "test_start"] == [0, 1, 2]
        assert reporter.events[0][2] == "1/0"  # the per-test seed string

    def test_parallel_reports_in_index_order_too(self):
        serial, parallel = RecordingReporter(), RecordingReporter()
        SerialEngine().run(eggtimer_runner(), [serial])
        ParallelEngine(jobs=3).run(eggtimer_runner(), [parallel])
        assert serial.events == parallel.events

    def test_counterexample_hook_fires_on_failure(self):
        reporter = RecordingReporter()
        runner = eggtimer_runner(egg_timer_app(decrement=2), tests=5,
                                 scheduled_actions=20, seed=7)
        result = SerialEngine().run(runner, [reporter])
        assert not result.passed
        assert any(e[0] == "counterexample" for e in reporter.events)
        # stop_on_failure: the campaign ends at the first failing index.
        assert reporter.events[-1] == ("campaign_end", result.tests_run)


class TestConsoleReporter:
    def test_summary_printed(self):
        stream = io.StringIO()
        SerialEngine().run(
            eggtimer_runner(), [ConsoleReporter(stream=stream)]
        )
        assert "safety: PASSED after 3 test(s)" in stream.getvalue()

    def test_verbose_prints_per_test_lines(self):
        stream = io.StringIO()
        SerialEngine().run(
            eggtimer_runner(), [ConsoleReporter(stream=stream, verbose=True)]
        )
        assert "test 0:" in stream.getvalue()

    def test_counterexample_described(self):
        stream = io.StringIO()
        runner = eggtimer_runner(egg_timer_app(decrement=2), tests=5,
                                 scheduled_actions=20, seed=7, shrink=True)
        SerialEngine().run(runner, [ConsoleReporter(stream=stream)])
        out = stream.getvalue()
        assert "counterexample" in out
        assert "FAILED" in out


class TestJsonlReporter:
    def test_every_line_is_json(self):
        stream = io.StringIO()
        runner = eggtimer_runner(egg_timer_app(decrement=2), tests=5,
                                 scheduled_actions=20, seed=7, shrink=True)
        SerialEngine().run(runner, [JsonlReporter(stream=stream)])
        lines = [l for l in stream.getvalue().splitlines() if l]
        records = [json.loads(line) for line in lines]
        kinds = [r["event"] for r in records]
        assert kinds[0] == "campaign_start"
        assert kinds[1] == "test_start"
        assert kinds[-1] == "campaign_end"
        assert "counterexample" in kinds
        end = records[-1]
        assert end["passed"] is False
        cex = next(r for r in records if r["event"] == "counterexample")
        assert cex["verdict"] == "DEFINITELY_FALSE"
        assert cex["shrunk_actions"] is not None
        assert all("name" in a and "action" in a for a in cex["shrunk_actions"])

    def test_test_end_record_carries_metrics(self):
        stream = io.StringIO()
        SerialEngine().run(eggtimer_runner(), [JsonlReporter(stream=stream)])
        records = [json.loads(l) for l in stream.getvalue().splitlines() if l]
        test_end = next(r for r in records if r["event"] == "test_end")
        for key in ("verdict", "passed", "forced", "actions_taken",
                    "states_observed", "elapsed_virtual_ms"):
            assert key in test_end


class TestJUnitXmlReporter:
    def _run_campaigns(self, reporter):
        SerialEngine().run(eggtimer_runner(), [reporter])
        failing = eggtimer_runner(egg_timer_app(decrement=2), tests=5,
                                  scheduled_actions=20, seed=7, shrink=True)
        result = SerialEngine().run(failing, [reporter])
        reporter.on_session_end([(None, result)])

    def test_document_shape(self):
        stream = io.StringIO()
        self._run_campaigns(JUnitXmlReporter(stream=stream))
        root = ElementTree.fromstring(stream.getvalue())
        assert root.tag == "testsuites"
        suites = list(root.iter("testsuite"))
        assert len(suites) == 2
        passing, failing = suites
        assert passing.get("failures") == "0"
        assert passing.get("tests") == "3"
        assert passing.get("skipped") == "0"
        assert failing.get("failures") == "1"
        # stop_on_failure: the campaign planned 5 tests and stopped at
        # the first failure; unreached indices appear as <skipped>.
        assert failing.get("tests") == "5"
        cases = list(failing.iter("testcase"))
        assert len(cases) == 5
        failed = [c for c in cases if c.find("failure") is not None]
        assert len(failed) == 1
        failure = failed[0].find("failure")
        assert failed[0].get("name").startswith("safety[")
        assert "counterexample" in failure.text
        assert "DEFINITELY_FALSE" in failure.get("message")
        skipped = [c for c in cases if c.find("skipped") is not None]
        assert len(skipped) == int(failing.get("skipped")) > 0
        ran = [c for c in cases if c.find("skipped") is None]
        assert len(ran) + len(skipped) == 5
        # Skipped cases follow the failing index and carry a reason.
        assert all("stop" in c.find("skipped").get("message")
                   for c in skipped)
        assert root.get("skipped") == failing.get("skipped")

    def test_write_to_path(self, tmp_path):
        path = tmp_path / "report.xml"
        reporter = JUnitXmlReporter(path=str(path))
        self._run_campaigns(reporter)
        root = ElementTree.fromstring(path.read_text(encoding="utf-8"))
        testcases = list(root.iter("testcase"))
        assert root.get("tests") == str(len(testcases))
        assert len(testcases) >= 4  # 3 passing + at least the failing run
        assert root.get("failures") == "1"

    def test_write_is_idempotent(self):
        stream = io.StringIO()
        reporter = JUnitXmlReporter(stream=stream)
        SerialEngine().run(eggtimer_runner(), [reporter])
        reporter.write()
        reporter.write()
        assert stream.getvalue().count("<testsuites") == 1

    def test_stream_and_path_conflict(self):
        with pytest.raises(ValueError, match="not both"):
            JUnitXmlReporter(stream=io.StringIO(), path="x.xml")

    def test_testcases_carry_action_count_properties(self):
        """Per-test detail rides as <properties>: action/state counts
        and the verdict, matching the TestResult bit for bit."""
        stream = io.StringIO()
        reporter = JUnitXmlReporter(stream=stream)
        runner = eggtimer_runner()
        result = SerialEngine().run(runner, [reporter])
        reporter.on_session_end([(None, result)])
        root = ElementTree.fromstring(stream.getvalue())
        cases = list(root.iter("testcase"))
        assert len(cases) == len(result.results)
        for case, test in zip(cases, result.results):
            properties = case.find("properties")
            assert properties is not None
            by_name = {
                p.get("name"): p.get("value")
                for p in properties.iter("property")
            }
            assert by_name["actions"] == str(test.actions_taken)
            assert by_name["states"] == str(test.states_observed)
            assert by_name["verdict"] == test.verdict.name

    def test_skipped_testcases_carry_no_properties(self):
        """Unreached indices (stop_on_failure) did no work; their
        <skipped> cases stay property-free."""
        stream = io.StringIO()
        reporter = JUnitXmlReporter(stream=stream)
        self._run_campaigns(reporter)
        root = ElementTree.fromstring(stream.getvalue())
        skipped = [c for c in root.iter("testcase")
                   if c.find("skipped") is not None]
        assert skipped
        assert all(c.find("properties") is None for c in skipped)

    def test_target_label_names_the_suite(self):
        reporter = JUnitXmlReporter(stream=io.StringIO())
        reporter.on_campaign_start("safety", 1, target="todomvc:vue")
        result = SerialEngine().run(eggtimer_runner(tests=1))
        reporter.on_test_end("safety", 0, result.results[0])
        reporter.on_campaign_end(result)
        root = ElementTree.fromstring(reporter.to_xml())
        suite = root.find("testsuite")
        assert suite.get("name") == "todomvc:vue"
        assert suite.find("testcase").get("classname") == "todomvc:vue"


class TestProgressReporter:
    def test_non_tty_prints_one_line_per_campaign(self):
        stream = io.StringIO()  # not a TTY
        reporter = ProgressReporter(stream=stream)
        reporter.on_session_start(2)
        SerialEngine().run(eggtimer_runner(), [reporter])
        failing = eggtimer_runner(egg_timer_app(decrement=2), tests=5,
                                  scheduled_actions=20, seed=7)
        result = SerialEngine().run(failing, [reporter])
        reporter.on_session_end([(None, result), (None, result)])
        lines = stream.getvalue().splitlines()
        assert "[1/2] safety: ok (3 tests)" in lines
        assert any("FAIL" in line for line in lines)
        assert lines[-1].endswith("1 passed, 1 failed")

    def test_tty_rewrites_in_place(self):
        class Tty(io.StringIO):
            def isatty(self):
                return True

        stream = Tty()
        SerialEngine().run(eggtimer_runner(), [ProgressReporter(stream=stream)])
        out = stream.getvalue()
        assert "\r" in out
        assert "test 1/3" in out
        assert "safety: ok (3 tests)" in out

    def test_piped_mode_emits_no_per_test_noise(self):
        """When piped (CI logs), per-test updates stay silent -- only
        campaign completions produce lines, so logs don't scroll."""
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream)
        reporter.on_campaign_start("safety", 3)
        result = SerialEngine().run(eggtimer_runner(tests=1))
        reporter.on_test_end("safety", 0, result.results[0])
        assert stream.getvalue() == ""  # nothing until the campaign ends
        reporter.on_campaign_end(result)
        lines = stream.getvalue().splitlines()
        assert lines == ["safety: ok (1 tests)"]
        assert "\r" not in stream.getvalue()

    def test_tty_pads_shorter_rewrites_to_clear_residue(self):
        """A rewrite shorter than the widest line so far is padded, so
        stale characters from the previous render never linger."""

        class Tty(io.StringIO):
            def isatty(self):
                return True

        stream = Tty()
        reporter = ProgressReporter(stream=stream)
        reporter.on_campaign_start("a-very-long-property-name", 2)
        result = SerialEngine().run(eggtimer_runner(tests=1))
        reporter.on_test_end("a-very-long-property-name", 0,
                             result.results[0])
        long_line = stream.getvalue().split("\r")[-1]
        reporter.on_campaign_start("p", 1)
        reporter.on_test_end("p", 0, result.results[0])
        short_line = stream.getvalue().split("\r")[-1]
        assert len(short_line) >= len(long_line.rstrip())
        assert short_line.rstrip() == "p: test 1/1"

    def test_tty_freezes_a_failed_campaign_line(self):
        """Failures stay visible: the FAIL line ends with a newline so
        the next campaign's rewrites start below it."""

        class Tty(io.StringIO):
            def isatty(self):
                return True

        stream = Tty()
        reporter = ProgressReporter(stream=stream)
        failing = eggtimer_runner(egg_timer_app(decrement=2), tests=5,
                                  scheduled_actions=20, seed=7)
        result = SerialEngine().run(failing, [reporter])
        assert not result.passed
        out = stream.getvalue()
        fail_chunk = [part for part in out.split("\r") if "FAIL" in part][-1]
        assert fail_chunk.endswith("\n")
        reporter.on_session_end([(None, result)])
        # The summary rewrites the (now empty) live line and terminates it.
        assert stream.getvalue().endswith("1 failed\n")

    def test_piped_session_summary_is_a_plain_line(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream)
        reporter.on_session_start(1)
        result = SerialEngine().run(eggtimer_runner(tests=1), [reporter])
        reporter.on_session_end([(None, result)])
        assert stream.getvalue().splitlines()[-1] == (
            "1 campaign(s): 1 passed, 0 failed"
        )


class TestReporterVersioning:
    """The versioned Reporter ABC: ``api_version`` + explicit adapter
    replace the old per-call ``on_session_end`` signature sniffing."""

    def test_builtins_declare_version_2(self):
        from repro.api.reporters import REPORTER_API_VERSION

        for cls in (ConsoleReporter, JsonlReporter, JUnitXmlReporter,
                    ProgressReporter):
            assert cls.api_version == REPORTER_API_VERSION

    def test_base_class_stays_version_1(self):
        # Deliberate: an old subclass overriding on_session_end(outcomes)
        # must not inherit a version-2 promise its override doesn't keep.
        assert Reporter.api_version == 1

    def test_version_2_reporters_are_used_directly(self):
        from repro.api import adapt_reporter

        reporter = JsonlReporter(stream=io.StringIO())
        assert adapt_reporter(reporter) is reporter

    def test_version_1_reporters_are_wrapped(self):
        from repro.api import LegacyReporterAdapter, adapt_reporter

        class Old(Reporter):
            def on_session_end(self, outcomes):  # pre-metrics signature
                self.seen = outcomes

        old = Old()
        adapted = adapt_reporter(old)
        assert isinstance(adapted, LegacyReporterAdapter)
        assert adapted.wrapped is old

    def test_adapter_drops_metrics_for_old_signatures(self):
        from repro.api import PoolMetrics
        from repro.api.reporters import emit_session_end

        calls = []

        class Old(Reporter):
            def on_session_end(self, outcomes):
                calls.append(outcomes)

        emit_session_end([Old()], [("x", object())],
                         metrics=PoolMetrics(jobs=2))
        assert len(calls) == 1 and calls[0][0][0] == "x"

    def test_adapter_passes_metrics_when_accepted(self):
        from repro.api import PoolMetrics
        from repro.api.reporters import emit_session_end

        calls = []

        class Declared(Reporter):
            api_version = 2

            def on_session_end(self, outcomes, metrics=None):
                calls.append(metrics)

        class Sniffed(Reporter):  # version 1, but takes the keyword
            def on_session_end(self, outcomes, metrics=None):
                calls.append(metrics)

        metrics = PoolMetrics(jobs=3)
        emit_session_end([Declared(), Sniffed()], [], metrics=metrics)
        assert calls == [metrics, metrics]

    def test_adapter_forwards_every_other_hook(self):
        from repro.api import adapt_reporter

        events = []

        class Old(Reporter):
            def on_session_start(self, campaigns):
                events.append(("session_start", campaigns))

            def on_campaign_start(self, property_name, tests, target=None):
                events.append(("campaign_start", property_name, tests,
                               target))

            def on_test_start(self, property_name, index, seed):
                events.append(("test_start", index))

            def on_session_end(self, outcomes):
                events.append(("session_end", len(outcomes)))

        adapted = adapt_reporter(Old())
        adapted.on_session_start(2)
        adapted.on_campaign_start("p", 4, target="t")
        adapted.on_test_start("p", 0, "seed/0")
        adapted.on_session_end([], metrics=None)
        assert events == [("session_start", 2),
                          ("campaign_start", "p", 4, "t"),
                          ("test_start", 0),
                          ("session_end", 0)]

    def test_legacy_reporter_rides_a_real_batch(self):
        """End to end: a pre-metrics reporter attached to check_many
        still receives its session_end, with no TypeError."""
        from repro.api import CheckSession, SessionConfig
        from repro.specs import load_eggtimer_spec

        seen = []

        class Old(Reporter):
            def on_session_end(self, outcomes):
                seen.append([target for target, _ in outcomes])

        session = CheckSession(egg_timer_app(), reporters=[Old()])
        session.check_many(
            [("egg", egg_timer_app())],
            spec=load_eggtimer_spec().check_named("safety"),
            config=RunnerConfig(tests=2, scheduled_actions=10,
                                demand_allowance=5, shrink=False),
            session=SessionConfig(jobs=1),
        )
        assert seen == [["egg"]]
