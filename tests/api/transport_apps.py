"""App factories importable by remote ``repro worker`` processes.

The TCP transport ships *strings*, not closures: a worker turns
``import:tests.api.transport_apps:faulty_egg`` back into a factory via
:func:`repro.api.transport.worker.resolve_app`.  This module is the
conformance suite's registry -- the attributes here must stay importable
with the repository root on ``PYTHONPATH``.
"""

from repro.apps.eggtimer import egg_timer_app

#: The bundled egg timer, unmodified (a passing campaign).
ok_egg = egg_timer_app()

#: An egg timer that decrements twice per tick -- violates the safety
#: property, so campaigns against it fail with a counterexample.
faulty_egg = egg_timer_app(decrement=2)
