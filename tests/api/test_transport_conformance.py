"""Transport conformance: every PoolTransport yields the serial truth.

The ``PoolTransport`` seam promises that *how* tasks reach workers --
forked processes, threads, or ``repro worker`` processes on the far end
of a TCP socket -- never changes *what* the batch reports: verdicts,
counterexamples (shrunk included) and the deterministic reporter event
stream must be byte-identical to the serial loop with the same seeds.

This suite runs one mixed batch (a passing campaign, a failing+shrunk
campaign via the ``import:`` app registry, and a failing TodoMVC
implementation) through every transport and compares against serial.
The TCP half additionally pins the fabric's failure semantics with a
hand-rolled fake worker speaking the wire protocol:

* a worker that dies mid-task has exactly that ``(campaign, index)``
  requeued (and logged) -- surviving workers finish the batch with
  verdicts still identical to serial;
* when *every* worker dies, the batch aborts with a
  :class:`WorkerCrashed` naming the exact in-flight ``(campaign,
  index)`` ids;
* ``KeyboardInterrupt`` mid-batch tears the fabric down cleanly
  (workers exit 0, nothing hangs);
* one live transport serves many batches (the epoch logic).
"""

import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.api import (
    CheckSession,
    CheckTarget,
    Reporter,
    SessionConfig,
    TcpTransport,
    WorkerCrashed,
)
from repro.api.transport.wire import (
    PROTOCOL_VERSION,
    recv_frame,
    send_frame,
)
from repro.apps.eggtimer import egg_timer_app
from repro.apps.todomvc import implementation_named
from repro.checker import RunnerConfig
from repro.specs import load_eggtimer_spec, load_todomvc_spec, spec_path
from tests.api.test_scheduler import (
    RecordingReporter,
    assert_batches_identical,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def worker_env() -> dict:
    """Subprocess env where both ``repro`` and this test package (for
    the ``import:`` registry) resolve."""
    env = dict(os.environ)
    parts = [str(REPO_ROOT / "src"), str(REPO_ROOT)]
    if env.get("PYTHONPATH"):
        parts.append(env["PYTHONPATH"])
    env["PYTHONPATH"] = os.pathsep.join(parts)
    return env


def start_worker(
    port: int, slots: int = 1, concurrency: int = 1, latency_ms: float = 0.0
) -> subprocess.Popen:
    argv = [sys.executable, "-m", "repro", "worker",
            "--connect", f"127.0.0.1:{port}", "--slots", str(slots)]
    if concurrency != 1:
        argv += ["--concurrency", str(concurrency)]
    if latency_ms:
        argv += ["--latency-ms", str(latency_ms)]
    return subprocess.Popen(
        argv, env=worker_env(), cwd=str(REPO_ROOT),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def conformance_targets():
    """A passing, a failing+shrinking, and a failing-TodoMVC campaign,
    each carrying the remote descriptor a ``repro worker`` needs."""
    egg = load_eggtimer_spec().check_named("safety")
    todo = load_todomvc_spec(default_subscript=40).check_named("safety")
    egg_path = spec_path("eggtimer.strom")
    todo_path = spec_path("todomvc.strom")
    return [
        CheckTarget(
            "egg-ok", egg_timer_app(), spec=egg,
            config=RunnerConfig(tests=4, scheduled_actions=15,
                                demand_allowance=10, seed=7, shrink=False),
            remote={"spec": egg_path, "app": "eggtimer"},
        ),
        CheckTarget(
            "egg-faulty", egg_timer_app(decrement=2), spec=egg,
            config=RunnerConfig(tests=5, scheduled_actions=20,
                                demand_allowance=10, seed=7, shrink=True),
            remote={"spec": egg_path,
                    "app": "import:tests.api.transport_apps:faulty_egg"},
        ),
        CheckTarget(
            "todomvc-failing",
            implementation_named("angularjs").app_factory(), spec=todo,
            config=RunnerConfig(tests=4, scheduled_actions=40,
                                demand_allowance=20, seed=2, shrink=True),
            remote={"spec": todo_path, "app": "todomvc:angularjs",
                    "subscript": 40},
        ),
    ]


def run_batch(session_cfg: SessionConfig):
    reporter = RecordingReporter()
    session = CheckSession(reporters=[reporter])
    batch = session.check_many(conformance_targets(), session=session_cfg)
    return batch, reporter.events


@pytest.fixture
def tcp_fabric():
    """Factory for a live TCP transport plus ``repro worker``
    subprocesses, torn down (and reaped) after the test."""
    transports, procs = [], []

    def make(workers: int = 2, slots: int = 1, concurrency: int = 1,
             latency_ms: float = 0.0, **kwargs) -> TcpTransport:
        kwargs.setdefault("min_workers", workers * slots)
        transport = TcpTransport(**kwargs)
        transports.append(transport)
        for _ in range(workers):
            procs.append(
                start_worker(transport.port, slots, concurrency, latency_ms)
            )
        return transport

    yield make
    for transport in transports:
        transport.close()
    for proc in procs:
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:  # pragma: no cover - hang guard
            proc.kill()
            proc.wait()


class FakeWorker:
    """A hand-rolled worker speaking just enough of the wire protocol
    to take a task and then die at a chosen moment."""

    def __init__(self, port: int, pid: int = 99999, host: str = "fake"):
        self.sock = socket.create_connection(("127.0.0.1", port))
        self.sock.settimeout(30.0)
        self.label = f"{pid}@{host}"
        send_frame(self.sock, {
            "type": "hello", "version": PROTOCOL_VERSION,
            "slots": 1, "host": host, "pid": pid,
        })
        welcome = recv_frame(self.sock)
        assert welcome["type"] == "welcome"

    def take_task(self) -> dict:
        """Ask for work until a task frame arrives, then keep it."""
        send_frame(self.sock, {"type": "next"})
        while True:
            message = recv_frame(self.sock)
            if message["type"] == "task":
                return message
            assert message["type"] == "wait"
            send_frame(self.sock, {"type": "next"})

    def die(self) -> None:
        self.sock.close()


class TestTransportIdentity:
    """Acceptance bar: distributed == pooled == serial, byte for byte."""

    @pytest.fixture(scope="class")
    def serial(self):
        return run_batch(SessionConfig(jobs=1))

    @pytest.mark.parametrize("kind", ["fork", "thread"])
    def test_local_transports_match_serial(self, kind, serial):
        serial_batch, serial_events = serial
        batch, events = run_batch(SessionConfig(jobs=2, transport=kind))
        assert_batches_identical(serial_batch, batch)
        assert events == serial_events
        assert batch.metrics.transport == kind

    def test_tcp_sharded_over_two_workers_matches_serial(
        self, serial, tcp_fabric
    ):
        serial_batch, serial_events = serial
        transport = tcp_fabric(workers=2)
        batch, events = run_batch(
            SessionConfig(jobs=2, transport=transport)
        )
        assert_batches_identical(serial_batch, batch)
        assert events == serial_events
        assert batch.metrics.transport == "tcp"
        # The batch genuinely sharded: both remote hosts ran tasks, and
        # every completed task is attributed to one of them.
        host_tasks = batch.metrics.host_tasks()
        assert len(host_tasks) == 2
        assert all(count > 0 for count in host_tasks.values())
        assert sum(host_tasks.values()) == batch.metrics.tasks_completed

    @pytest.mark.parametrize("kind", ["fork", "thread"])
    def test_multiplexed_local_transports_match_serial(self, kind, serial):
        """concurrency > 1 on the local transports: each worker slot
        multiplexes sessions on an event loop, verdicts unchanged."""
        import multiprocessing

        from repro.api.transport import ForkTransport, ThreadTransport

        serial_batch, serial_events = serial
        if kind == "fork":
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                pytest.skip("fork start method unavailable")
            transport = ForkTransport(ctx, concurrency=4)
        else:
            transport = ThreadTransport(concurrency=4)
        batch, events = run_batch(SessionConfig(jobs=2, transport=transport))
        assert_batches_identical(serial_batch, batch)
        assert events == serial_events

    def test_multiplexed_tcp_workers_match_serial(self, serial, tcp_fabric):
        """The headline acceptance test: 2 remote workers x concurrency
        4 with injected wire latency must reproduce the serial batch --
        verdicts, shrunk counterexamples and reporter stream -- while
        capacity() reports the full multiplexed width."""
        serial_batch, serial_events = serial
        transport = tcp_fabric(workers=2, concurrency=4, latency_ms=3.0)
        _await(lambda: len(transport._workers) == 2, timeout_s=30.0)
        assert transport.capacity() == 8
        batch, events = run_batch(SessionConfig(jobs=2, transport=transport))
        assert_batches_identical(serial_batch, batch)
        assert events == serial_events
        assert batch.metrics.transport == "tcp"
        host_tasks = batch.metrics.host_tasks()
        assert sum(host_tasks.values()) == batch.metrics.tasks_completed

    def test_one_transport_serves_many_batches(self, serial, tcp_fabric):
        serial_batch, _ = serial
        transport = tcp_fabric(workers=2)
        first, _ = run_batch(SessionConfig(jobs=2, transport=transport))
        second, _ = run_batch(SessionConfig(jobs=2, transport=transport))
        assert_batches_identical(serial_batch, first)
        assert_batches_identical(serial_batch, second)


class TestTcpFailureSemantics:
    def test_dead_worker_task_is_requeued_and_attributed(self, tcp_fabric):
        serial_batch, _ = run_batch(SessionConfig(jobs=1))
        transport = tcp_fabric(workers=0, min_workers=1,
                               heartbeat_timeout_s=30.0)
        fake = FakeWorker(transport.port)

        box = {}

        def drive():
            try:
                box["batch"], _ = run_batch(
                    SessionConfig(jobs=2, transport=transport)
                )
            except BaseException as err:  # pragma: no cover - surfaced below
                box["error"] = err

        thread = threading.Thread(target=drive)
        thread.start()
        taken = fake.take_task()
        fake.die()
        # A real worker picks up the requeued task and drains the batch.
        proc = start_worker(transport.port)
        thread.join(timeout=180)
        assert not thread.is_alive(), "batch never completed after requeue"
        assert "error" not in box, box.get("error")
        assert_batches_identical(serial_batch, box["batch"])
        # The loss is attributed to the exact (campaign, index) pair.
        assert transport.requeue_log == [(fake.label, ("egg-ok", 0))]
        assert int(taken["id"]) == 0
        transport.close()
        assert proc.wait(timeout=15) == 0

    def test_all_workers_dead_aborts_naming_in_flight_tasks(
        self, tcp_fabric
    ):
        transport = tcp_fabric(workers=0, min_workers=1,
                               connect_timeout_s=1.5)
        fake = FakeWorker(transport.port)

        box = {}

        def drive():
            try:
                run_batch(SessionConfig(jobs=2, transport=transport))
            except BaseException as err:
                box["error"] = err

        thread = threading.Thread(target=drive)
        thread.start()
        fake.take_task()
        fake.die()
        thread.join(timeout=60)
        assert not thread.is_alive()
        crash = box.get("error")
        assert isinstance(crash, WorkerCrashed)
        # The crash names exactly what died: the dispatched task by its
        # (campaign, index) id, and every never-reported task.
        assert crash.in_flight == [("egg-ok", 0)]
        assert ("egg-ok", 0) in crash.unreported
        assert len(crash.unreported) == sum(
            t.config.tests for t in conformance_targets()
        )

    def test_keyboard_interrupt_tears_the_fabric_down(self, tcp_fabric):
        transport = tcp_fabric(workers=1)

        class Bomb(Reporter):
            def on_test_end(self, property_name, index, result):
                raise KeyboardInterrupt()

        session = CheckSession(reporters=[Bomb()])
        with pytest.raises(KeyboardInterrupt):
            session.check_many(
                conformance_targets(),
                session=SessionConfig(jobs=2, transport=transport),
            )
        transport.close()
        # The worker saw a clean shutdown frame, not a dead socket.
        # (The fixture would kill a hung worker; exit 0 is the claim.)

    def test_clean_shutdown_exits_workers_zero(self):
        transport = TcpTransport(min_workers=1)
        proc = start_worker(transport.port)
        _await(lambda: transport._workers, timeout_s=30.0)
        transport.close()
        assert proc.wait(timeout=15) == 0


class TestTcpCapacity:
    def test_capacity_sums_connected_worker_slots(self):
        transport = TcpTransport(min_workers=1)
        try:
            assert transport.capacity() == 1  # floor before any join
            single = FakeWorker(transport.port)
            _await(lambda: len(transport._workers) == 1)
            assert transport.capacity() == 1
            # slots announced in hello are what capacity() sums.
            fat = socket.create_connection(("127.0.0.1", transport.port))
            fat.settimeout(10.0)
            send_frame(fat, {"type": "hello",
                             "version": PROTOCOL_VERSION,
                             "slots": 3, "host": "fat", "pid": 1})
            assert recv_frame(fat)["type"] == "welcome"
            _await(lambda: transport.capacity() == 4)
            fat.close()
            single.die()
        finally:
            transport.close()

    def test_capacity_multiplies_slots_by_concurrency(self):
        """A multiplexing worker announces its per-slot concurrency in
        the hello; capacity() admits the full slots x concurrency width
        (the --jobs auto clamp reads this)."""
        transport = TcpTransport(min_workers=1)
        try:
            mux = socket.create_connection(("127.0.0.1", transport.port))
            mux.settimeout(10.0)
            send_frame(mux, {"type": "hello",
                             "version": PROTOCOL_VERSION,
                             "slots": 2, "concurrency": 3,
                             "host": "mux", "pid": 2})
            assert recv_frame(mux)["type"] == "welcome"
            _await(lambda: transport.capacity() == 6)
            mux.close()
        finally:
            transport.close()

    def test_version_mismatch_is_rejected(self):
        transport = TcpTransport(min_workers=1)
        try:
            sock = socket.create_connection(("127.0.0.1", transport.port))
            sock.settimeout(10.0)
            send_frame(sock, {"type": "hello", "version": 999,
                              "slots": 1, "host": "x", "pid": 1})
            reply = recv_frame(sock)
            assert reply["type"] == "error"
            assert "version" in reply["reason"]
            sock.close()
        finally:
            transport.close()


class TestCoordinatorWakeup:
    def test_await_workers_wakes_on_join_not_on_a_poll_tick(self):
        """``_await_workers`` waits on the join condition: a worker
        landing half a second in must unblock the batch immediately,
        not after a sleep-poll period (the old loop dozed up to half a
        heartbeat -- seconds -- past the final join)."""
        transport = TcpTransport(min_workers=1, connect_timeout_s=30.0)
        workers = []
        try:
            def late_join():
                time.sleep(0.5)
                workers.append(FakeWorker(transport.port))

            thread = threading.Thread(target=late_join)
            thread.start()
            started = time.monotonic()
            transport._await_workers()
            elapsed = time.monotonic() - started
            thread.join()
            assert elapsed < 2.0, (
                f"_await_workers returned {elapsed:.2f}s after start; the "
                "join should have woken it at ~0.5s"
            )
        finally:
            for worker in workers:
                worker.die()
            transport.close()

    def test_handshake_completing_after_close_is_shut_down(self):
        """The join/close race: a connection whose handshake straddles
        ``close()`` must still be told to shut down -- a worker orphaned
        off the snapshot list would otherwise hang forever."""
        transport = TcpTransport(min_workers=1)
        sock = socket.create_connection(("127.0.0.1", transport.port))
        sock.settimeout(10.0)
        time.sleep(0.3)  # the handler is now blocked reading our hello
        transport.close()
        send_frame(sock, {"type": "hello", "version": PROTOCOL_VERSION,
                          "slots": 1, "host": "late", "pid": 3})
        assert recv_frame(sock)["type"] == "welcome"
        assert recv_frame(sock)["type"] == "shutdown"
        sock.close()


def _await(condition, timeout_s: float = 10.0) -> None:
    deadline = time.monotonic() + timeout_s
    while not condition():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.05)
