"""Engine equivalence: parallel campaigns are observationally serial.

The acceptance bar for the parallel engine is *bit-for-bit agreement*
with the serial loop for the same seed: identical verdicts, identical
counterexample action sequences, identical per-test results, identical
``tests_run`` -- the first failing index wins stop_on_failure and
shrinking, not the first failure to arrive.
"""

import pytest

from repro.api import ParallelEngine, SerialEngine
from repro.apps.eggtimer import egg_timer_app
from repro.apps.todomvc import implementation_named
from repro.checker import Runner, RunnerConfig
from repro.executors import DomExecutor
from repro.specs import load_eggtimer_spec, load_todomvc_spec


def assert_campaigns_identical(serial, parallel):
    assert serial.passed == parallel.passed
    assert serial.tests_run == parallel.tests_run
    assert [r.verdict for r in serial.results] == [
        r.verdict for r in parallel.results
    ]
    assert [r.actions for r in serial.results] == [
        r.actions for r in parallel.results
    ]
    assert [r.actions_taken for r in serial.results] == [
        r.actions_taken for r in parallel.results
    ]
    assert [r.states_observed for r in serial.results] == [
        r.states_observed for r in parallel.results
    ]
    assert [r.forced for r in serial.results] == [r.forced for r in parallel.results]
    if serial.counterexample is None:
        assert parallel.counterexample is None
    else:
        assert serial.counterexample.actions == parallel.counterexample.actions
        assert serial.counterexample.verdict is parallel.counterexample.verdict
    if serial.shrunk_counterexample is None:
        assert parallel.shrunk_counterexample is None
    else:
        assert (
            serial.shrunk_counterexample.actions
            == parallel.shrunk_counterexample.actions
        )


class TestEggTimerEquivalence:
    @pytest.mark.parametrize("seed", [0, 7, 99])
    def test_passing_campaign(self, seed):
        spec = load_eggtimer_spec().check_named("safety")
        config = RunnerConfig(tests=4, scheduled_actions=15,
                              demand_allowance=10, seed=seed, shrink=False)
        runner = Runner(spec, lambda: DomExecutor(egg_timer_app()), config)
        serial = SerialEngine().run(runner)
        parallel = ParallelEngine(jobs=4).run(runner)
        assert_campaigns_identical(serial, parallel)
        assert serial.tests_run == 4

    def test_failing_campaign_with_shrinking(self):
        spec = load_eggtimer_spec().check_named("safety")
        config = RunnerConfig(tests=5, scheduled_actions=20,
                              demand_allowance=10, seed=7, shrink=True)
        runner = Runner(
            spec, lambda: DomExecutor(egg_timer_app(decrement=2)), config
        )
        serial = SerialEngine().run(runner)
        parallel = ParallelEngine(jobs=4).run(runner)
        assert not serial.passed
        assert_campaigns_identical(serial, parallel)
        assert [n for n, _ in parallel.shrunk_counterexample.actions] == [
            "start!", "wait!",
        ]


class TestTodoMvcEquivalence:
    def test_failing_implementation(self):
        spec = load_todomvc_spec(default_subscript=60).check_named("safety")
        impl = implementation_named("polymer")
        config = RunnerConfig(tests=12, scheduled_actions=60,
                              demand_allowance=20, seed=2, shrink=True)
        runner = Runner(
            spec, lambda: DomExecutor(impl.app_factory()), config
        )
        serial = SerialEngine().run(runner)
        parallel = ParallelEngine(jobs=4).run(runner)
        assert not serial.passed
        assert_campaigns_identical(serial, parallel)

    def test_continue_after_failure_keeps_all_results(self):
        """stop_on_failure=False: every index runs; the merged order is
        the index order, not completion order."""
        spec = load_todomvc_spec(default_subscript=40).check_named("safety")
        impl = implementation_named("polymer")
        config = RunnerConfig(tests=6, scheduled_actions=40,
                              demand_allowance=20, seed=2, shrink=False,
                              stop_on_failure=False)
        runner = Runner(
            spec, lambda: DomExecutor(impl.app_factory()), config
        )
        serial = SerialEngine().run(runner)
        parallel = ParallelEngine(jobs=4).run(runner)
        assert serial.tests_run == 6
        assert_campaigns_identical(serial, parallel)


class TestEngineConfiguration:
    def test_single_job_falls_back_to_serial_semantics(self):
        spec = load_eggtimer_spec().check_named("safety")
        config = RunnerConfig(tests=2, scheduled_actions=10,
                              demand_allowance=5, seed=1, shrink=False)
        runner = Runner(spec, lambda: DomExecutor(egg_timer_app()), config)
        serial = SerialEngine().run(runner)
        one_job = ParallelEngine(jobs=1).run(runner)
        assert_campaigns_identical(serial, one_job)

    def test_more_jobs_than_tests(self):
        spec = load_eggtimer_spec().check_named("safety")
        config = RunnerConfig(tests=2, scheduled_actions=10,
                              demand_allowance=5, seed=1, shrink=False)
        runner = Runner(spec, lambda: DomExecutor(egg_timer_app()), config)
        serial = SerialEngine().run(runner)
        wide = ParallelEngine(jobs=16).run(runner)
        assert_campaigns_identical(serial, wide)

    def test_rejects_non_positive_jobs(self):
        with pytest.raises(ValueError):
            ParallelEngine(jobs=0)

    def test_default_jobs_uses_cpu_count(self):
        engine = ParallelEngine()
        assert engine.jobs >= 1

    def test_threaded_path_matches_serial(self, monkeypatch):
        """The fork-free fallback must be equivalent too."""
        from repro.api import pool as pool_module

        spec = load_eggtimer_spec().check_named("safety")
        config = RunnerConfig(tests=4, scheduled_actions=12,
                              demand_allowance=5, seed=3, shrink=False)
        runner = Runner(spec, lambda: DomExecutor(egg_timer_app()), config)
        serial = SerialEngine().run(runner)
        monkeypatch.setattr(
            pool_module.WorkerPool, "_fork_context", staticmethod(lambda: None)
        )
        threaded = ParallelEngine(jobs=4).run(runner)
        assert_campaigns_identical(serial, threaded)

    def test_worker_exception_propagates(self):
        class ExplodingRunner:
            class _Spec:
                name = "boom"

            spec = _Spec()
            config = RunnerConfig(tests=4, seed=0)

            def run_single_test(self, rng):
                raise RuntimeError("executor exploded")

        with pytest.raises(RuntimeError, match="executor exploded"):
            ParallelEngine(jobs=2).run(ExplodingRunner())
