"""The executor lifecycle manager: warm checkout/checkin semantics.

These are the unit tests of the lease layer in isolation (fake
executors); the end-to-end guarantee -- warm-reuse verdicts identical
to cold-start verdicts -- lives in ``test_warm_reuse.py``.
"""

from repro.api.lease import ExecutorCache, ExecutorLease
from repro.protocol.messages import Reset, Start

START = Start(frozenset({"#x"}), ())


class FakeExecutor:
    """Records its lifecycle; ``resettable`` controls the reset answer."""

    def __init__(self, resettable=True):
        self.resettable = resettable
        self.started = 0
        self.resets = []
        self.stopped = 0

    def start(self, start):
        self.started += 1

    def reset(self, reset):
        if not self.resettable:
            return False
        self.resets.append(reset)
        return True

    def stop(self):
        self.stopped += 1


class NoResetExecutor:
    """A duck-typed backend from before the Reset protocol existed."""

    def __init__(self):
        self.started = 0
        self.stopped = 0

    def start(self, start):
        self.started += 1

    def stop(self):
        self.stopped += 1


def make_factory(cls=FakeExecutor, **kwargs):
    made = []

    def factory():
        executor = cls(**kwargs)
        made.append(executor)
        return executor

    factory.made = made
    return factory


class TestCheckout:
    def test_cold_start_on_empty_cache(self):
        cache = ExecutorCache()
        factory = make_factory()
        lease = cache.lease(factory)
        executor = lease.checkout(START)
        assert executor.started == 1
        assert not lease.warm
        assert cache.cold_starts.value == 1
        assert cache.warm_hits.value == 0

    def test_checkin_then_checkout_reuses_the_same_executor(self):
        cache = ExecutorCache()
        factory = make_factory()
        first = cache.lease(factory)
        executor = first.checkout(START)
        first.checkin(executor)
        assert len(cache) == 1
        second = cache.lease(factory)
        again = second.checkout(START)
        assert again is executor
        assert second.warm
        assert executor.stopped == 0
        assert executor.resets and isinstance(executor.resets[0], Reset)
        assert executor.resets[0].dependencies == START.dependencies
        assert cache.warm_hits.value == 1
        assert cache.cold_starts.value == 1
        assert len(factory.made) == 1  # the factory ran exactly once

    def test_checkout_removes_the_entry(self):
        """Two concurrent leases can never share one executor."""
        cache = ExecutorCache()
        factory = make_factory()
        lease = cache.lease(factory)
        lease.checkin(lease.checkout(START))
        a = cache.lease(factory).checkout(START)
        b = cache.lease(factory).checkout(START)
        assert a is not b

    def test_backend_that_declines_reset_is_retired(self):
        cache = ExecutorCache()
        factory = make_factory(resettable=False)
        lease = cache.lease(factory)
        executor = lease.checkout(START)
        lease.checkin(executor)
        replacement = cache.lease(factory).checkout(START)
        assert replacement is not executor
        assert executor.stopped == 1  # retired, not leaked
        assert replacement.started == 1
        assert cache.cold_starts.value == 2
        assert cache.warm_hits.value == 0

    def test_pre_reset_backends_fall_back_cold(self):
        """An executor without a reset method (third-party duck type)
        must still work -- stop + fresh construction."""
        cache = ExecutorCache()
        factory = make_factory(cls=NoResetExecutor)
        lease = cache.lease(factory)
        executor = lease.checkout(START)
        lease.checkin(executor)
        replacement = cache.lease(factory).checkout(START)
        assert replacement is not executor
        assert executor.stopped == 1
        assert cache.warm_hits.value == 0

    def test_distinct_factories_never_share_executors(self):
        cache = ExecutorCache()
        factory_a, factory_b = make_factory(), make_factory()
        lease_a = cache.lease(factory_a)
        executor_a = lease_a.checkout(START)
        lease_a.checkin(executor_a)
        executor_b = cache.lease(factory_b).checkout(START)
        assert executor_b is not executor_a
        assert len(factory_b.made) == 1


class TestDisabled:
    def test_disabled_cache_always_starts_cold_and_stops(self):
        cache = ExecutorCache(enabled=False)
        factory = make_factory()
        lease = cache.lease(factory)
        executor = lease.checkout(START)
        lease.checkin(executor)
        assert executor.stopped == 1
        assert len(cache) == 0
        again = cache.lease(factory).checkout(START)
        assert again is not executor
        assert cache.cold_starts.value == 2


class TestClose:
    def test_close_stops_every_warm_executor(self):
        cache = ExecutorCache()
        factory_a, factory_b = make_factory(), make_factory()
        for factory in (factory_a, factory_b):
            lease = cache.lease(factory)
            lease.checkin(lease.checkout(START))
        assert len(cache) == 2
        cache.close()
        assert len(cache) == 0
        assert factory_a.made[0].stopped == 1
        assert factory_b.made[0].stopped == 1


class TestCountersAcrossLeases:
    def test_counts_accumulate_over_a_campaign_shape(self):
        """N tests of one target: 1 cold start, N-1 warm hits."""
        cache = ExecutorCache()
        factory = make_factory()
        for _ in range(5):
            lease = cache.lease(factory)
            lease.checkin(lease.checkout(START))
        assert cache.cold_starts.value == 1
        assert cache.warm_hits.value == 4
        assert len(factory.made) == 1

    def test_lease_key_override(self):
        """Explicit keys group factories built per call."""
        cache = ExecutorCache()
        executors = []
        for _ in range(3):
            factory = make_factory()  # a fresh factory object each time
            lease = cache.lease(factory, key="shared-target")
            executors.append(lease.checkout(START))
            lease.checkin(executors[-1])
        assert executors[1] is executors[0]
        assert executors[2] is executors[0]
        assert cache.warm_hits.value == 2

    def test_lease_is_exported_type(self):
        cache = ExecutorCache()
        assert isinstance(cache.lease(make_factory()), ExecutorLease)


class TestRelease:
    def test_release_stops_and_drops_the_entry(self):
        cache = ExecutorCache()
        factory = make_factory()
        lease = cache.lease(factory)
        lease.checkin(lease.checkout(START))
        assert len(cache) == 1
        cache.release(factory)
        assert len(cache) == 0
        assert factory.made[0].stopped == 1

    def test_release_of_a_missing_key_is_a_no_op(self):
        cache = ExecutorCache()
        cache.release("never-seen")  # must not raise
        assert len(cache) == 0


class TestSchedulerReleasesFinishedTargets:
    def test_serial_batch_holds_at_most_one_live_executor_per_target_in_play(self):
        """A target's warm executor is stopped when its last campaign
        finishes, not kept until the end of the batch."""
        from repro.api import CheckSession, CheckTarget, SessionConfig
        from repro.apps.eggtimer import egg_timer_app
        from repro.checker import RunnerConfig
        from repro.executors import DomExecutor
        from repro.specs import load_eggtimer_spec

        stopped = []

        class TrackedExecutor(DomExecutor):
            def __init__(self, app_factory, name):
                super().__init__(app_factory)
                self.name = name

            def stop(self):
                stopped.append(self.name)

        def tracked(name):
            return lambda: TrackedExecutor(egg_timer_app(), name)

        spec = load_eggtimer_spec().check_named("safety")
        config = RunnerConfig(tests=2, scheduled_actions=8,
                              demand_allowance=5, seed=3, shrink=False)
        targets = [
            CheckTarget("first", tracked("first"), spec=spec, config=config),
            CheckTarget("second", tracked("second"), spec=spec, config=config),
        ]

        stops_so_far = []
        from repro.api import Reporter

        class WatchingReporter(Reporter):
            """Snapshot the stop log as each campaign ends."""


            def on_campaign_end(self, result):
                stops_so_far.append(list(stopped))

        CheckSession(reporters=[WatchingReporter()]).check_many(
            targets, session=SessionConfig(jobs=1)
        )
        # The first target's executor was stopped by the time the
        # second campaign ended (released at its last use), and both
        # are stopped when the batch completes.
        assert stops_so_far[-1] == ["first"]
        assert stopped == ["first", "second"]

    def test_pooled_thread_batch_releases_finished_targets(self, monkeypatch):
        """Thread fallback shares the cache: a target's warm executor
        is freed when its last campaign merges, not at batch end."""
        from repro.api import CheckSession, CheckTarget, SessionConfig
        from repro.api.pool import WorkerPool
        from repro.apps.eggtimer import egg_timer_app
        from repro.checker import RunnerConfig
        from repro.executors import DomExecutor
        from repro.specs import load_eggtimer_spec

        monkeypatch.setattr(
            WorkerPool, "_fork_context", staticmethod(lambda: None)
        )
        stopped = []

        class TrackedExecutor(DomExecutor):
            def __init__(self, app_factory, name):
                super().__init__(app_factory)
                self.name = name

            def stop(self):
                stopped.append(self.name)

        def tracked(name):
            return lambda: TrackedExecutor(egg_timer_app(), name)

        spec = load_eggtimer_spec().check_named("safety")
        config = RunnerConfig(tests=2, scheduled_actions=8,
                              demand_allowance=5, seed=3, shrink=False)
        targets = [
            CheckTarget("first", tracked("first"), spec=spec, config=config),
            CheckTarget("second", tracked("second"), spec=spec, config=config),
        ]
        CheckSession().check_many(targets, session=SessionConfig(jobs=2))
        # Both targets' warm executors were stopped by the end of the
        # batch (per-target release plus the final cache.close()).
        assert sorted(set(stopped)) == ["first", "second"]


class TestResetFailureFallback:
    def test_a_raising_reset_falls_back_to_cold_start(self):
        """reset() blowing up (dead warm session) must not fail the
        test: retire the executor, start cold."""

        class DyingExecutor:
            def __init__(self):
                self.started = 0
                self.stopped = 0

            def start(self, start):
                self.started += 1

            def reset(self, reset):
                raise RuntimeError("session is gone")

            def stop(self):
                self.stopped += 1
                raise RuntimeError("even stop fails")

        cache = ExecutorCache()
        factory = make_factory(cls=DyingExecutor)
        lease = cache.lease(factory)
        lease.checkin(lease.checkout(START))
        replacement = cache.lease(factory).checkout(START)
        assert replacement is not factory.made[0]
        assert replacement.started == 1
        assert factory.made[0].stopped == 1  # retirement was attempted
        assert cache.warm_hits.value == 0
        assert cache.cold_starts.value == 2


class TestBoundedCache:
    def test_checkin_past_the_bound_evicts_least_recently_used(self):
        cache = ExecutorCache(max_entries=2)
        factories = [make_factory() for _ in range(3)]
        for factory in factories:
            lease = cache.lease(factory)
            lease.checkin(lease.checkout(START))
        assert len(cache) == 2
        # The first-parked executor was evicted and stopped.
        assert factories[0].made[0].stopped == 1
        assert factories[1].made[0].stopped == 0
        assert factories[2].made[0].stopped == 0

    def test_recently_reused_entries_survive_eviction(self):
        cache = ExecutorCache(max_entries=2)
        factory_a, factory_b, factory_c = (make_factory() for _ in range(3))
        for factory in (factory_a, factory_b):
            lease = cache.lease(factory)
            lease.checkin(lease.checkout(START))
        # Touch A again: it becomes most recently used.
        lease = cache.lease(factory_a)
        lease.checkin(lease.checkout(START))
        lease = cache.lease(factory_c)
        lease.checkin(lease.checkout(START))
        # B (least recently used) was evicted; A survived.
        assert factory_b.made[0].stopped == 1
        assert factory_a.made[0].stopped == 0

    def test_unbounded_by_default(self):
        cache = ExecutorCache()
        factories = [make_factory() for _ in range(10)]
        for factory in factories:
            lease = cache.lease(factory)
            lease.checkin(lease.checkout(START))
        assert len(cache) == 10


class TestDepth:
    def test_depth_must_be_positive(self):
        import pytest

        with pytest.raises(ValueError):
            ExecutorCache(depth=0)

    def test_default_depth_evicts_on_overlapping_checkins(self):
        """The depth-1 baseline: two overlapping leases of one key park
        two executors, and the second checkin evicts the first."""
        cache = ExecutorCache()
        factory = make_factory()
        lease_a, lease_b = cache.lease(factory), cache.lease(factory)
        executor_a = lease_a.checkout(START)
        executor_b = lease_b.checkout(START)  # cache empty: both cold
        lease_a.checkin(executor_a)
        lease_b.checkin(executor_b)
        assert len(cache) == 1
        assert executor_a.stopped == 1  # evicted by the deeper checkin

    def test_depth_two_keeps_overlapping_leases_warm(self):
        """A worker interleaving two tasks of the same target (thread
        pool, dynamic dispatch) keeps both executors warm."""
        cache = ExecutorCache(depth=2)
        factory = make_factory()
        lease_a, lease_b = cache.lease(factory), cache.lease(factory)
        executor_a = lease_a.checkout(START)
        executor_b = lease_b.checkout(START)
        lease_a.checkin(executor_a)
        lease_b.checkin(executor_b)
        assert len(cache) == 2
        assert executor_a.stopped == 0 and executor_b.stopped == 0
        # The next overlapping pair is served entirely warm, LIFO:
        # the most recently parked executor comes back first.
        lease_c, lease_d = cache.lease(factory), cache.lease(factory)
        assert lease_c.checkout(START) is executor_b
        assert lease_d.checkout(START) is executor_a
        assert lease_c.warm and lease_d.warm
        assert cache.cold_starts.value == 2
        assert cache.warm_hits.value == 2
        assert len(factory.made) == 2  # no third construction, ever

    def test_release_and_close_stop_every_parked_depth_entry(self):
        cache = ExecutorCache(depth=3)
        factory = make_factory()
        leases = [cache.lease(factory) for _ in range(3)]
        executors = [lease.checkout(START) for lease in leases]
        for lease, executor in zip(leases, executors):
            lease.checkin(executor)
        assert len(cache) == 3
        cache.release(factory)
        assert len(cache) == 0
        assert all(executor.stopped == 1 for executor in executors)

    def test_max_entries_counts_executors_not_keys(self):
        """The global bound is on live sessions: a deep key's oldest
        executor is evicted first."""
        cache = ExecutorCache(depth=2, max_entries=2)
        factory_a, factory_b = make_factory(), make_factory()
        lease_1, lease_2 = cache.lease(factory_a), cache.lease(factory_a)
        executor_1, executor_2 = lease_1.checkout(START), lease_2.checkout(START)
        lease_1.checkin(executor_1)
        lease_2.checkin(executor_2)
        lease_3 = cache.lease(factory_b)
        lease_3.checkin(lease_3.checkout(START))
        assert len(cache) == 2
        assert executor_1.stopped == 1  # key A's oldest went first
        assert executor_2.stopped == 0
        assert factory_b.made[0].stopped == 0
