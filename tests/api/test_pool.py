"""The shared worker-pool transport.

The pool is the load-bearing wall under both `ParallelEngine` and the
cross-campaign `PooledScheduler`: these tests pin down worker reuse
across campaigns (the fork-amortisation the scheduler exists for),
exception/skip transport, precise crash attribution, and that no worker
ever survives an aborted batch (KeyboardInterrupt included).
"""

import os
import time

import pytest

from repro.api.pool import (
    SKIPPED,
    PoolTask,
    TaskFailure,
    WorkerCrashed,
    WorkerPool,
)


def _no_alive_workers(pool):
    return not any(w.is_alive() for w in pool.last_workers)


class TestBasics:
    def test_runs_every_task_and_keys_by_id(self):
        pool = WorkerPool(2)
        tasks = [PoolTask(i, (lambda i=i: i * i)) for i in range(7)]
        outcomes = pool.run(tasks)
        assert outcomes == {i: i * i for i in range(7)}

    def test_empty_batch(self):
        assert WorkerPool(2).run([]) == {}

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            WorkerPool(2).run([PoolTask(0, int), PoolTask(0, int)])

    def test_rejects_non_positive_jobs(self):
        with pytest.raises(ValueError):
            WorkerPool(0)

    def test_exceptions_are_transported_not_raised(self):
        def boom():
            raise RuntimeError("inside the worker")

        outcomes = WorkerPool(2).run(
            [PoolTask("ok", lambda: 1), PoolTask("bad", boom)]
        )
        assert outcomes["ok"] == 1
        assert isinstance(outcomes["bad"], TaskFailure)
        assert "inside the worker" in str(outcomes["bad"].error)

    def test_skip_predicate_short_circuits(self):
        outcomes = WorkerPool(2).run(
            [
                PoolTask("run", lambda: "ran"),
                PoolTask("skip", lambda: "ran", skip=lambda: True),
            ]
        )
        assert outcomes["run"] == "ran"
        assert outcomes["skip"] == SKIPPED

    def test_on_result_sees_every_completion(self):
        seen = {}
        WorkerPool(2).run(
            [PoolTask(i, (lambda i=i: -i)) for i in range(5)],
            on_result=lambda task_id, outcome: seen.__setitem__(task_id, outcome),
        )
        assert seen == {i: -i for i in range(5)}


class TestWorkerReuse:
    def test_workers_are_reused_across_campaigns(self):
        """Three "campaigns" of tasks on a two-worker pool: every task
        runs in one of at most two forked children (not the parent), and
        by pigeonhole some child serves more than one campaign -- the
        fork-amortisation that one-pool-per-campaign cannot give."""
        pool = WorkerPool(2)
        if not pool.uses_fork:
            pytest.skip("fork transport unavailable on this platform")
        campaigns = ["alpha", "beta", "gamma"]
        tasks = [
            PoolTask((campaign, index), os.getpid)
            for campaign in campaigns
            for index in range(3)
        ]
        outcomes = pool.run(tasks)
        pids = set(outcomes.values())
        assert len(pids) <= 2
        assert os.getpid() not in pids
        campaigns_by_pid = {}
        for (campaign, _), pid in outcomes.items():
            campaigns_by_pid.setdefault(pid, set()).add(campaign)
        assert any(len(served) >= 2 for served in campaigns_by_pid.values())

    def test_shared_counter_is_visible_to_workers(self):
        pool = WorkerPool(2)
        counter = pool.make_counter(100)

        def bump():
            with counter.get_lock():
                counter.value -= 1
            return counter.value

        pool.run([PoolTask(i, bump) for i in range(4)])
        assert counter.value == 96


class TestCrashAttribution:
    """The satellite fix: a dead worker names exactly what it was
    running, instead of losing the index."""

    def test_worker_death_names_the_in_flight_task(self):
        pool = WorkerPool(2)
        if not pool.uses_fork:
            pytest.skip("fork transport unavailable on this platform")

        def die():
            os._exit(3)

        tasks = [
            PoolTask(("todomvc:polymer", 0), lambda: "fine"),
            PoolTask(("todomvc:angular", 1), die),
        ]
        with pytest.raises(WorkerCrashed) as excinfo:
            pool.run(tasks)
        assert "('todomvc:angular', 1)" in str(excinfo.value)
        assert ("todomvc:angular", 1) in excinfo.value.in_flight
        assert _no_alive_workers(pool)

    def test_keyboard_interrupt_in_worker_kills_it_and_is_attributed(self):
        pool = WorkerPool(2)

        def interrupted():
            raise KeyboardInterrupt()

        with pytest.raises(WorkerCrashed) as excinfo:
            pool.run(
                [PoolTask("calm", lambda: 1), PoolTask("ctrl-c", interrupted)]
            )
        assert "ctrl-c" in str(excinfo.value)
        assert _no_alive_workers(pool)

    def test_thread_fallback_attributes_crashes_too(self, monkeypatch):
        monkeypatch.setattr(
            WorkerPool, "_fork_context", staticmethod(lambda: None)
        )
        pool = WorkerPool(2)
        assert not pool.uses_fork

        def explode():
            raise SystemExit(2)

        with pytest.raises(WorkerCrashed, match="boom-task"):
            pool.run([PoolTask("boom-task", explode)])
        assert _no_alive_workers(pool)


class TestCleanShutdown:
    def test_parent_side_interrupt_tears_the_pool_down(self):
        """A Ctrl-C landing in the parent's collect loop (modelled by a
        reporter callback raising KeyboardInterrupt) must terminate and
        join every worker before propagating."""
        pool = WorkerPool(2)

        def slow(value):
            time.sleep(0.05)
            return value

        tasks = [PoolTask(i, (lambda i=i: slow(i))) for i in range(8)]

        def interrupt_on_first(task_id, outcome):
            raise KeyboardInterrupt()

        with pytest.raises(KeyboardInterrupt):
            pool.run(tasks, on_result=interrupt_on_first)
        assert _no_alive_workers(pool)

    def test_normal_completion_leaves_no_workers(self):
        pool = WorkerPool(3)
        pool.run([PoolTask(i, (lambda i=i: i)) for i in range(6)])
        assert _no_alive_workers(pool)

    def test_thread_fallback_matches_fork_outcomes(self, monkeypatch):
        monkeypatch.setattr(
            WorkerPool, "_fork_context", staticmethod(lambda: None)
        )
        pool = WorkerPool(3)
        outcomes = pool.run(
            [PoolTask(i, (lambda i=i: i + 10)) for i in range(5)]
            + [PoolTask("skipped", lambda: 0, skip=lambda: True)]
        )
        assert outcomes == {**{i: i + 10 for i in range(5)}, "skipped": SKIPPED}
        assert _no_alive_workers(pool)


class TestThreadFallbackCrashReporting:
    """The `"crash"` branch of _run_threaded, in detail: attribution,
    unreported accounting, and that completed work is not misreported."""

    def _thread_pool(self, monkeypatch, jobs):
        monkeypatch.setattr(
            WorkerPool, "_fork_context", staticmethod(lambda: None)
        )
        pool = WorkerPool(jobs)
        assert not pool.uses_fork
        return pool

    def test_crash_lists_in_flight_and_unreported(self, monkeypatch):
        pool = self._thread_pool(monkeypatch, 1)

        def boom():
            raise KeyboardInterrupt()

        tasks = [
            PoolTask("done-first", lambda: "ok"),
            PoolTask("boom", boom),
            PoolTask("never-ran", lambda: "unreachable"),
        ]
        with pytest.raises(WorkerCrashed) as excinfo:
            pool.run(tasks)
        crash = excinfo.value
        # One worker runs the queue in order: the finished task is not
        # reported lost, the crashing one is in-flight, and everything
        # without an outcome (crasher included) is unreported.
        assert crash.in_flight == ["boom"]
        assert crash.unreported == ["boom", "never-ran"]
        assert "boom" in str(crash)
        assert _no_alive_workers(pool)

    def test_crash_chains_the_original_error(self, monkeypatch):
        pool = self._thread_pool(monkeypatch, 1)

        def explode():
            raise SystemExit(3)

        with pytest.raises(WorkerCrashed) as excinfo:
            pool.run([PoolTask("t", explode)])
        assert isinstance(excinfo.value.__cause__, SystemExit)

    def test_surviving_threads_are_starved_after_crash(self, monkeypatch):
        """Other workers exit at their next queue read instead of
        draining the doomed batch."""
        pool = self._thread_pool(monkeypatch, 2)

        def boom():
            raise KeyboardInterrupt()

        tasks = [PoolTask("boom", boom)] + [
            PoolTask(i, time.monotonic) for i in range(20)
        ]
        with pytest.raises(WorkerCrashed):
            pool.run(tasks)
        assert _no_alive_workers(pool)


class TestPoolMetrics:
    def _metrics(self):
        from repro.api.pool import PoolMetrics

        return PoolMetrics()

    def test_fork_mode_fills_transport_and_worker_stats(self):
        pool = WorkerPool(2)
        metrics = self._metrics()
        outcomes = pool.run(
            [PoolTask(i, (lambda i=i: i)) for i in range(6)], metrics=metrics
        )
        assert len(outcomes) == 6
        assert metrics.transport == ("fork" if pool.uses_fork else "thread")
        assert metrics.jobs == 2
        assert metrics.tasks_total == 6
        assert metrics.tasks_completed == 6
        assert metrics.tasks_skipped == 0
        assert sum(metrics.worker_tasks.values()) == 6
        assert set(metrics.worker_tasks) <= {0, 1}
        assert all(busy >= 0 for busy in metrics.worker_busy_s.values())
        assert metrics.queue_depth_samples
        assert 1 <= metrics.max_queue_depth <= 6

    def test_skipped_tasks_are_counted(self):
        metrics = self._metrics()
        WorkerPool(2).run(
            [
                PoolTask("run", lambda: 1),
                PoolTask("skip", lambda: 1, skip=lambda: True),
            ],
            metrics=metrics,
        )
        assert metrics.tasks_skipped == 1
        assert metrics.tasks_completed == 2

    def test_thread_mode_fills_the_same_fields(self, monkeypatch):
        monkeypatch.setattr(
            WorkerPool, "_fork_context", staticmethod(lambda: None)
        )
        metrics = self._metrics()
        WorkerPool(2).run(
            [PoolTask(i, (lambda i=i: i)) for i in range(5)], metrics=metrics
        )
        assert metrics.transport == "thread"
        assert metrics.tasks_completed == 5
        assert sum(metrics.worker_tasks.values()) == 5
        assert metrics.queue_depth_samples

    def test_to_dict_is_json_ready(self):
        import json

        metrics = self._metrics()
        WorkerPool(2).run(
            [PoolTask(i, (lambda i=i: i)) for i in range(3)], metrics=metrics
        )
        metrics.wall_s = 0.5
        payload = metrics.to_dict()
        json.dumps(payload)  # must not raise
        for key in ("jobs", "transport", "wall_s", "tasks_total",
                    "warm_hits", "cold_starts", "warm_hit_ratio",
                    "max_queue_depth", "worker_tasks",
                    "worker_utilisation", "campaign_wall_s"):
            assert key in payload

    def test_utilisation_is_busy_over_wall(self):
        from repro.api.pool import PoolMetrics

        metrics = PoolMetrics(jobs=2, transport="fork")
        metrics.record_task(0, 0.25, False)
        metrics.record_task(1, 0.75, False)
        metrics.wall_s = 1.0
        assert metrics.utilisation() == {0: 0.25, 1: 0.75}
        assert metrics.warm_hit_ratio == 0.0


class TestWorkerExit:
    def test_worker_exit_runs_in_every_forked_worker(self):
        pool = WorkerPool(2)
        if not pool.uses_fork:
            pytest.skip("fork transport unavailable on this platform")
        ran = pool.make_counter(0)

        def cleanup():
            with ran.get_lock():
                ran.value += 1

        pool.run(
            [PoolTask(i, (lambda i=i: i)) for i in range(6)],
            worker_exit=cleanup,
        )
        assert ran.value == 2  # once per worker, in the children

    def test_worker_exit_is_optional(self):
        outcomes = WorkerPool(2).run([PoolTask(0, lambda: 1)])
        assert outcomes == {0: 1}
