"""The shared worker-pool transport.

The pool is the load-bearing wall under both `ParallelEngine` and the
cross-campaign `PooledScheduler`: these tests pin down worker reuse
across campaigns (the fork-amortisation the scheduler exists for),
exception/skip transport, precise crash attribution, and that no worker
ever survives an aborted batch (KeyboardInterrupt included).
"""

import os
import time

import pytest

from repro.api.pool import (
    SKIPPED,
    PoolTask,
    TaskFailure,
    WorkerCrashed,
    WorkerPool,
)


def _no_alive_workers(pool):
    return not any(w.is_alive() for w in pool.last_workers)


class TestBasics:
    def test_runs_every_task_and_keys_by_id(self):
        pool = WorkerPool(2)
        tasks = [PoolTask(i, (lambda i=i: i * i)) for i in range(7)]
        outcomes = pool.run(tasks)
        assert outcomes == {i: i * i for i in range(7)}

    def test_empty_batch(self):
        assert WorkerPool(2).run([]) == {}

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            WorkerPool(2).run([PoolTask(0, int), PoolTask(0, int)])

    def test_rejects_non_positive_jobs(self):
        with pytest.raises(ValueError):
            WorkerPool(0)

    def test_exceptions_are_transported_not_raised(self):
        def boom():
            raise RuntimeError("inside the worker")

        outcomes = WorkerPool(2).run(
            [PoolTask("ok", lambda: 1), PoolTask("bad", boom)]
        )
        assert outcomes["ok"] == 1
        assert isinstance(outcomes["bad"], TaskFailure)
        assert "inside the worker" in str(outcomes["bad"].error)

    def test_skip_predicate_short_circuits(self):
        outcomes = WorkerPool(2).run(
            [
                PoolTask("run", lambda: "ran"),
                PoolTask("skip", lambda: "ran", skip=lambda: True),
            ]
        )
        assert outcomes["run"] == "ran"
        assert outcomes["skip"] == SKIPPED

    def test_on_result_sees_every_completion(self):
        seen = {}
        WorkerPool(2).run(
            [PoolTask(i, (lambda i=i: -i)) for i in range(5)],
            on_result=lambda task_id, outcome: seen.__setitem__(task_id, outcome),
        )
        assert seen == {i: -i for i in range(5)}


class TestWorkerReuse:
    def test_workers_are_reused_across_campaigns(self):
        """Three "campaigns" of tasks on a two-worker pool: every task
        runs in one of at most two forked children (not the parent), and
        by pigeonhole some child serves more than one campaign -- the
        fork-amortisation that one-pool-per-campaign cannot give."""
        pool = WorkerPool(2)
        if not pool.uses_fork:
            pytest.skip("fork transport unavailable on this platform")
        campaigns = ["alpha", "beta", "gamma"]
        tasks = [
            PoolTask((campaign, index), os.getpid)
            for campaign in campaigns
            for index in range(3)
        ]
        outcomes = pool.run(tasks)
        pids = set(outcomes.values())
        assert len(pids) <= 2
        assert os.getpid() not in pids
        campaigns_by_pid = {}
        for (campaign, _), pid in outcomes.items():
            campaigns_by_pid.setdefault(pid, set()).add(campaign)
        assert any(len(served) >= 2 for served in campaigns_by_pid.values())

    def test_shared_counter_is_visible_to_workers(self):
        pool = WorkerPool(2)
        counter = pool.make_counter(100)

        def bump():
            with counter.get_lock():
                counter.value -= 1
            return counter.value

        pool.run([PoolTask(i, bump) for i in range(4)])
        assert counter.value == 96


class TestCrashAttribution:
    """The satellite fix: a dead worker names exactly what it was
    running, instead of losing the index."""

    def test_worker_death_names_the_in_flight_task(self):
        pool = WorkerPool(2)
        if not pool.uses_fork:
            pytest.skip("fork transport unavailable on this platform")

        def die():
            os._exit(3)

        tasks = [
            PoolTask(("todomvc:polymer", 0), lambda: "fine"),
            PoolTask(("todomvc:angular", 1), die),
        ]
        with pytest.raises(WorkerCrashed) as excinfo:
            pool.run(tasks)
        assert "('todomvc:angular', 1)" in str(excinfo.value)
        assert ("todomvc:angular", 1) in excinfo.value.in_flight
        assert _no_alive_workers(pool)

    def test_keyboard_interrupt_in_worker_kills_it_and_is_attributed(self):
        pool = WorkerPool(2)

        def interrupted():
            raise KeyboardInterrupt()

        with pytest.raises(WorkerCrashed) as excinfo:
            pool.run(
                [PoolTask("calm", lambda: 1), PoolTask("ctrl-c", interrupted)]
            )
        assert "ctrl-c" in str(excinfo.value)
        assert _no_alive_workers(pool)

    def test_thread_fallback_attributes_crashes_too(self, monkeypatch):
        monkeypatch.setattr(
            WorkerPool, "_fork_context", staticmethod(lambda: None)
        )
        pool = WorkerPool(2)
        assert not pool.uses_fork

        def explode():
            raise SystemExit(2)

        with pytest.raises(WorkerCrashed, match="boom-task"):
            pool.run([PoolTask("boom-task", explode)])
        assert _no_alive_workers(pool)


class TestCleanShutdown:
    def test_parent_side_interrupt_tears_the_pool_down(self):
        """A Ctrl-C landing in the parent's collect loop (modelled by a
        reporter callback raising KeyboardInterrupt) must terminate and
        join every worker before propagating."""
        pool = WorkerPool(2)

        def slow(value):
            time.sleep(0.05)
            return value

        tasks = [PoolTask(i, (lambda i=i: slow(i))) for i in range(8)]

        def interrupt_on_first(task_id, outcome):
            raise KeyboardInterrupt()

        with pytest.raises(KeyboardInterrupt):
            pool.run(tasks, on_result=interrupt_on_first)
        assert _no_alive_workers(pool)

    def test_normal_completion_leaves_no_workers(self):
        pool = WorkerPool(3)
        pool.run([PoolTask(i, (lambda i=i: i)) for i in range(6)])
        assert _no_alive_workers(pool)

    def test_thread_fallback_matches_fork_outcomes(self, monkeypatch):
        monkeypatch.setattr(
            WorkerPool, "_fork_context", staticmethod(lambda: None)
        )
        pool = WorkerPool(3)
        outcomes = pool.run(
            [PoolTask(i, (lambda i=i: i + 10)) for i in range(5)]
            + [PoolTask("skipped", lambda: 0, skip=lambda: True)]
        )
        assert outcomes == {**{i: i + 10 for i in range(5)}, "skipped": SKIPPED}
        assert _no_alive_workers(pool)
