"""The shared strategies themselves: generated data is well-formed.

These properties keep ``tests/strategies.py`` honest -- every generator
must produce values the production code accepts, so a strategy can't
silently drift away from the vocabulary it claims to cover.
"""

from hypothesis import given

from repro.specstrom.actions import USER_PRIMITIVES
from repro.specstrom.state import StateSnapshot
from repro.specstrom.values import is_plain_data

from tests.strategies import (
    element_snapshots,
    examples,
    primitive_actions,
    primitive_events,
    resolved_actions,
    spec_values,
    state_snapshots,
)


class TestSpecValues:
    @given(spec_values())
    @examples(100)
    def test_values_are_plain_data(self, value):
        assert is_plain_data(value)


class TestSnapshots:
    @given(element_snapshots())
    @examples(50)
    def test_element_properties_read_back(self, element):
        for name in element.property_names():
            element.get_property(name)  # never raises
        assert element.disabled == (not element.enabled)

    @given(state_snapshots())
    @examples(50)
    def test_queried_selectors_resolve(self, state):
        assert isinstance(state, StateSnapshot)
        for css in state.queries:
            visible = state.visible_elements(css)
            assert all(el.visible for el in visible)
            first = state.first(css)
            assert first is None or first is state.elements(css)[0]


class TestActions:
    @given(primitive_actions())
    @examples(100)
    def test_primitives_respect_arity(self, primitive):
        needs_selector, extra = USER_PRIMITIVES[primitive.kind]
        assert (primitive.selector is not None) == needs_selector
        assert len(primitive.args) == len(extra)

    @given(primitive_events())
    @examples(50)
    def test_events_watch_exactly_when_selector_based(self, event):
        assert event.watches_selector == (event.selector is not None)

    @given(resolved_actions())
    @examples(100)
    def test_resolved_actions_describe_and_serialise(self, resolved):
        description = resolved.describe()
        assert resolved.kind in description
        if resolved.selector is not None:
            assert resolved.selector in description
            assert resolved.index is not None
