"""Forced valuation (polarity rule) for budget-exhausted runs."""

from hypothesis import given

from repro.quickltl import (
    Always,
    And,
    BOTTOM,
    Eventually,
    FormulaChecker,
    Not,
    NextReq,
    NextStrong,
    NextWeak,
    Or,
    Release,
    TOP,
    Until,
    Verdict,
    atom,
    force_verdict,
)

from .strategies import examples, formulas, traces

p = atom("p")
q = atom("q")


class TestPolarityRule:
    def test_safety_operators_default_true(self):
        assert force_verdict(Always(0, p)) is Verdict.PROBABLY_TRUE
        assert force_verdict(Release(3, p, q)) is Verdict.PROBABLY_TRUE

    def test_liveness_operators_default_false(self):
        assert force_verdict(Eventually(0, p)) is Verdict.PROBABLY_FALSE
        assert force_verdict(Until(3, p, q)) is Verdict.PROBABLY_FALSE

    def test_atoms_default_true(self):
        assert force_verdict(p) is Verdict.PROBABLY_TRUE

    def test_negation_flips(self):
        assert force_verdict(Not(p)) is Verdict.PROBABLY_FALSE
        assert force_verdict(Not(Eventually(0, p))) is Verdict.PROBABLY_TRUE

    def test_truth_values_clamped_to_presumptive(self):
        assert force_verdict(TOP) is Verdict.PROBABLY_TRUE
        assert force_verdict(BOTTOM) is Verdict.PROBABLY_FALSE

    def test_next_operators(self):
        assert force_verdict(NextWeak(BOTTOM)) is Verdict.PROBABLY_TRUE
        assert force_verdict(NextStrong(TOP)) is Verdict.PROBABLY_FALSE
        assert force_verdict(NextReq(Eventually(0, p))) is Verdict.PROBABLY_FALSE

    def test_pending_liveness_dominates_conjunction(self):
        residual = And(Eventually(1, p), Always(0, Eventually(1, p)))
        assert force_verdict(residual) is Verdict.PROBABLY_FALSE

    def test_transition_obligations_do_not_fail_safety(self):
        """A dangling transition obligation (explicit next over atoms) is
        not a concrete counterexample."""
        residual = And(Or(p, q), Always(0, Or(p, q)))
        assert force_verdict(residual) is Verdict.PROBABLY_TRUE

    @given(formulas())
    @examples(200)
    def test_always_presumptive(self, formula):
        assert force_verdict(formula).is_presumptive


class TestCheckerForce:
    def test_force_passes_through_non_demand(self):
        checker = FormulaChecker(Always(0, p))
        checker.observe({"p": True})
        assert checker.verdict is Verdict.PROBABLY_TRUE
        assert checker.force() is Verdict.PROBABLY_TRUE

    def test_force_resolves_stuck_liveness(self):
        checker = FormulaChecker(Always(0, Eventually(1, p)))
        for _ in range(5):
            checker.observe({"p": False})
        assert checker.verdict is Verdict.DEMAND
        assert checker.force() is Verdict.PROBABLY_FALSE

    def test_force_resolves_fulfilled_liveness_positively(self):
        checker = FormulaChecker(Eventually(3, p))
        checker.observe({"p": True})
        assert checker.verdict is Verdict.DEFINITELY_TRUE
        assert checker.force() is Verdict.DEFINITELY_TRUE

    @given(formulas(), traces(max_size=6))
    @examples(200)
    def test_force_always_yields_reportable_verdict(self, formula, trace):
        checker = FormulaChecker(formula)
        for state in trace:
            checker.observe(state)
        assert checker.force() is not Verdict.DEMAND
