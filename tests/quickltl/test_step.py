"""Guarded-form valuation and the step relation (Figure 7)."""

import pytest

from repro.quickltl import (
    And,
    NextReq,
    NextStrong,
    NextWeak,
    NotGuardedError,
    Or,
    Verdict,
    atom,
    demands_next,
    presumptive_valuation,
    step,
)

P = atom("p")
Q = atom("q")


class TestDemandsNext:
    def test_required_next_demands(self):
        assert demands_next(NextReq(P))

    def test_weak_and_strong_do_not(self):
        assert not demands_next(NextWeak(P))
        assert not demands_next(NextStrong(P))

    def test_propagates_through_connectives(self):
        assert demands_next(And(NextWeak(P), NextReq(Q)))
        assert demands_next(Or(NextStrong(P), NextReq(Q)))
        assert not demands_next(And(NextWeak(P), NextStrong(Q)))

    def test_rejects_unguarded(self):
        with pytest.raises(NotGuardedError):
            demands_next(P)


class TestPresumptiveValuation:
    def test_weak_next_reads_true(self):
        assert presumptive_valuation(NextWeak(P)) is Verdict.PROBABLY_TRUE

    def test_strong_next_reads_false(self):
        assert presumptive_valuation(NextStrong(P)) is Verdict.PROBABLY_FALSE

    def test_required_next_demands(self):
        assert presumptive_valuation(NextReq(P)) is Verdict.DEMAND

    def test_mixed_conjunction(self):
        f = And(NextWeak(P), NextStrong(Q))
        assert presumptive_valuation(f) is Verdict.PROBABLY_FALSE

    def test_mixed_disjunction(self):
        f = Or(NextWeak(P), NextStrong(Q))
        assert presumptive_valuation(f) is Verdict.PROBABLY_TRUE

    def test_demand_wins_in_conjunction_with_presumptive(self):
        f = And(NextWeak(P), NextReq(Q))
        assert presumptive_valuation(f) is Verdict.DEMAND

    def test_demand_wins_in_disjunction_with_presumptive(self):
        """Section 2.3: a presumptive answer may only be given when *no*
        required-next terms remain anywhere in the guarded form."""
        f = Or(NextWeak(P), NextReq(Q))
        assert presumptive_valuation(f) is Verdict.DEMAND

    def test_rejects_unguarded(self):
        with pytest.raises(NotGuardedError):
            presumptive_valuation(And(P, NextWeak(Q)))


class TestStep:
    def test_strips_each_next_kind(self):
        assert step(NextReq(P)) == P
        assert step(NextWeak(P)) == P
        assert step(NextStrong(P)) == P

    def test_homomorphic_on_connectives(self):
        f = And(NextReq(P), Or(NextWeak(Q), NextStrong(P)))
        assert step(f) == And(P, Or(Q, P))

    def test_rejects_unguarded(self):
        with pytest.raises(NotGuardedError):
            step(P)
