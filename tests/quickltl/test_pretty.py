"""Pretty-printer details beyond the parser round-trip suite."""

from repro.quickltl import (
    Always,
    And,
    BOTTOM,
    Defer,
    Eventually,
    NextReq,
    Not,
    Or,
    Release,
    TOP,
    Until,
    atom,
    pretty,
)

p = atom("p")
q = atom("q")


class TestRendering:
    def test_constants(self):
        assert pretty(TOP) == "true"
        assert pretty(BOTTOM) == "false"

    def test_subscripts_always_shown(self):
        assert pretty(Always(100, p)) == "always{100} p"
        assert pretty(Eventually(0, p)) == "eventually{0} p"

    def test_until_release_infix(self):
        assert pretty(Until(3, p, q)) == "p until{3} q"
        assert pretty(Release(0, p, q)) == "p release{0} q"

    def test_parenthesisation_minimal(self):
        assert pretty(And(Or(p, q), p)) == "(p || q) && p"
        assert pretty(Or(And(p, q), p)) == "p && q || p"

    def test_right_nested_connectives_parenthesised(self):
        # Keeps round-trips exact under the left-associative parser.
        assert pretty(And(p, And(q, p))) == "p && (q && p)"

    def test_unary_chains(self):
        assert pretty(Not(NextReq(p))) == "!next p"
        assert pretty(Always(2, Not(p))) == "always{2} !p"

    def test_defer_is_opaque(self):
        text = pretty(Defer("spec@3:1", lambda s: TOP))
        assert "spec@3:1" in text

    def test_str_dunder_uses_pretty(self):
        assert str(Always(1, p)) == pretty(Always(1, p))
