"""Simplifier: boolean identities, negation pushing, guarded form."""

from hypothesis import given

from repro.quickltl import (
    Always,
    And,
    BOTTOM,
    Bottom,
    Eventually,
    Not,
    NextReq,
    NextStrong,
    NextWeak,
    Or,
    Release,
    TOP,
    Top,
    Until,
    atom,
    direct_eval,
    is_guarded_form,
    negate,
    simplify,
    unroll,
)

from .strategies import formulas, traces

P = atom("p")
Q = atom("q")


class TestBooleanIdentities:
    def test_unit_laws(self):
        assert simplify(And(TOP, NextWeak(P))) == NextWeak(P)
        assert simplify(Or(BOTTOM, NextWeak(P))) == NextWeak(P)

    def test_zero_laws(self):
        assert simplify(And(BOTTOM, NextReq(P))) == BOTTOM
        assert simplify(Or(TOP, NextReq(P))) == TOP

    def test_idempotence_dedups_structurally_equal_terms(self):
        assert simplify(And(NextWeak(P), NextWeak(P))) == NextWeak(P)
        assert simplify(Or(NextStrong(P), NextStrong(P))) == NextStrong(P)

    def test_flattening_nested_connectives(self):
        f = And(And(TOP, NextWeak(P)), And(NextWeak(P), TOP))
        assert simplify(f) == NextWeak(P)

    def test_double_negation(self):
        assert simplify(Not(Not(NextWeak(P)))) == NextWeak(P)

    def test_atom_negation_is_preserved(self):
        assert simplify(Not(P)) == Not(P)


class TestNegationIdentities:
    """The negation identities 1-5 of Figure 3, adapted to QuickLTL."""

    def test_not_weak_next_is_strong_next_not(self):
        assert negate(NextWeak(P)) == NextStrong(Not(P))

    def test_not_strong_next_is_weak_next_not(self):
        assert negate(NextStrong(P)) == NextWeak(Not(P))

    def test_required_next_is_self_dual(self):
        assert negate(NextReq(P)) == NextReq(Not(P))

    def test_not_until_is_release(self):
        assert negate(Until(2, P, Q)) == Release(2, Not(P), Not(Q))

    def test_not_release_is_until(self):
        assert negate(Release(2, P, Q)) == Until(2, Not(P), Not(Q))

    def test_always_eventually_duality(self):
        assert negate(Always(3, P)) == Eventually(3, Not(P))
        assert negate(Eventually(3, P)) == Always(3, Not(P))

    def test_simplify_pushes_negations_through_nexts(self):
        f = Not(And(NextWeak(P), NextStrong(Q)))
        assert simplify(f) == Or(NextStrong(Not(P)), NextWeak(Not(Q)))


class TestNextBodiesNotCollapsed:
    """``wnext true`` is *not* ``true``: the weak default only applies when
    the trace actually ends, so collapsing would let the checker stop in
    the wrong states (see module docstring of repro.quickltl.simplify)."""

    def test_weak_next_top_kept(self):
        assert simplify(NextWeak(TOP)) == NextWeak(TOP)

    def test_strong_next_bottom_kept(self):
        assert simplify(NextStrong(BOTTOM)) == NextStrong(BOTTOM)

    def test_required_next_top_kept(self):
        assert simplify(NextReq(TOP)) == NextReq(TOP)

    def test_bodies_are_simplified(self):
        assert simplify(NextReq(And(TOP, P))) == NextReq(P)


class TestGuardedForm:
    @given(formulas(), traces(min_size=1, max_size=1))
    def test_unroll_then_simplify_is_constant_or_guarded(self, formula, trace):
        reduced = simplify(unroll(formula, trace[0]))
        assert isinstance(reduced, (Top, Bottom)) or is_guarded_form(reduced)

    def test_guarded_form_examples(self):
        assert is_guarded_form(NextWeak(P))
        assert is_guarded_form(And(NextReq(P), Or(NextWeak(P), NextStrong(Q))))
        assert not is_guarded_form(P)
        assert not is_guarded_form(And(P, NextWeak(P)))
        assert not is_guarded_form(TOP)


class TestSemanticsPreservation:
    @given(formulas(), traces(max_size=6))
    def test_simplified_unrolling_preserves_direct_verdict(self, formula, trace):
        """simplify(unroll(phi, s0)) must evaluate like phi on the trace.

        direct_eval treats the unrolled formula's next operators relative
        to the same trace, so this checks both unroll and simplify at
        once.
        """
        unrolled = unroll(formula, trace[0])
        assert direct_eval(unrolled, trace) == direct_eval(formula, trace)
        assert direct_eval(simplify(unrolled), trace) == direct_eval(formula, trace)

    @given(formulas(), traces(max_size=6))
    def test_negate_is_semantic_negation(self, formula, trace):
        from repro.quickltl.verdict import neg

        assert direct_eval(negate(formula), trace) == neg(direct_eval(formula, trace))
