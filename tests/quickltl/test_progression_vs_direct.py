"""Oracle equivalence: progression == direct reference semantics.

This is the central correctness property of the QuickLTL engine: the
three-phase progression loop of Section 2.3 computes exactly the verdict
given by the recursive reference semantics over the complete trace.
"""

from hypothesis import given

from repro.quickltl import (
    Always,
    Defer,
    FormulaChecker,
    Verdict,
    atom,
    check_trace,
    direct_eval,
)

from .strategies import examples, formulas, traces


@given(formulas(), traces(max_size=8))
@examples(400)
def test_progression_equals_direct_semantics(formula, trace):
    progressed = check_trace(formula, trace, stop_on_definitive=False)
    assert progressed == direct_eval(formula, trace)


@given(formulas(), traces(max_size=8))
@examples(200)
def test_unsimplified_progression_equals_direct(formula, trace):
    checker = FormulaChecker(formula, simplify_each_step=False)
    verdict = Verdict.DEMAND
    for state in trace:
        verdict = checker.observe(state)
    assert verdict == direct_eval(formula, trace)


@given(formulas(), traces(max_size=6), traces(max_size=4))
@examples(300)
def test_definitive_verdicts_stable_under_extension(formula, trace, extension):
    """Once definitive, any extension of the trace yields the same verdict
    (the real checker stops at definitive verdicts; this confirms that
    stopping early never changes the answer)."""
    verdict = direct_eval(formula, trace)
    if verdict.is_definitive:
        assert direct_eval(formula, list(trace) + list(extension)) == verdict


@given(formulas(), traces(max_size=8))
@examples(200)
def test_early_stop_agrees_with_full_run(formula, trace):
    """check_trace with stop_on_definitive gives the same result as a
    full run whenever the full run is definitive."""
    full = check_trace(formula, trace, stop_on_definitive=False)
    early = check_trace(formula, trace, stop_on_definitive=True)
    if full.is_definitive:
        assert early == full


@given(traces(max_size=6))
@examples(100)
def test_deferred_bodies_freeze_state_values(trace):
    """A Defer body mimicking Specstrom's strict let: ``let v = p; always
    (p == v)`` -- the deferred build must see the state where the
    enclosing operator unrolled."""

    def build(state):
        frozen = state["p"]
        return atom(f"p=={frozen}", lambda s, f=frozen: s["p"] == f)

    f = Always(0, Defer("evovae-ish", build))
    progressed = check_trace(f, trace, stop_on_definitive=False)
    assert progressed == direct_eval(f, trace)
