"""The progression checker on the paper's motivating scenarios."""


from repro.quickltl import (
    Always,
    Eventually,
    FormulaChecker,
    Release,
    Until,
    Verdict,
    atom,
    check_trace,
    implies,
)

menu_enabled = atom("menuEnabled")
logged_in = atom("loggedIn")
finances = atom("financesPage")
p = atom("p")


def alternating(n, start=True):
    return [{"menuEnabled": (i % 2 == 0) == start} for i in range(n)]


class TestSafetyProperties:
    def test_invariant_holds_presumptively(self):
        """No counterexample found => presumptively true (never definitive:
        a later state could still violate it)."""
        f = Always(0, implies(finances, logged_in))
        trace = [{"financesPage": False, "loggedIn": False}] * 5
        assert check_trace(f, trace) is Verdict.PROBABLY_TRUE

    def test_invariant_violation_is_definitive(self):
        f = Always(0, implies(finances, logged_in))
        trace = [
            {"financesPage": False, "loggedIn": False},
            {"financesPage": True, "loggedIn": False},
        ]
        assert check_trace(f, trace) is Verdict.DEFINITELY_FALSE

    def test_definitive_verdict_is_a_fixpoint(self):
        f = Always(0, p)
        checker = FormulaChecker(f)
        checker.observe({"p": True})
        verdict = checker.observe({"p": False})
        assert verdict is Verdict.DEFINITELY_FALSE
        # Further observations cannot change a definitive verdict.
        assert checker.observe({"p": True}) is Verdict.DEFINITELY_FALSE


class TestLivenessProperties:
    def test_witness_is_definitive(self):
        f = Eventually(0, menu_enabled)
        trace = [{"menuEnabled": False}, {"menuEnabled": True}]
        assert check_trace(f, trace) is Verdict.DEFINITELY_TRUE

    def test_unfulfilled_is_presumptively_false(self):
        f = Eventually(0, menu_enabled)
        trace = [{"menuEnabled": False}] * 4
        assert check_trace(f, trace) is Verdict.PROBABLY_FALSE

    def test_subscript_demands_minimum_states(self):
        """eventually{3} p cannot be answered before 4 states were seen."""
        f = Eventually(3, p)
        checker = FormulaChecker(f)
        for _ in range(3):
            assert checker.observe({"p": False}) is Verdict.DEMAND
        assert checker.observe({"p": False}) is Verdict.PROBABLY_FALSE


class TestMenuEnabledExample:
    """Section 2.1-2.2: ``always eventually{k} menuEnabled`` on a menu that
    alternates between enabled and disabled."""

    def test_rvltl_style_flaps_with_last_state(self):
        f = Always(0, Eventually(0, menu_enabled))
        ends_enabled = alternating(6, start=False)
        ends_disabled = alternating(6, start=True)
        assert check_trace(f, ends_enabled) is Verdict.PROBABLY_TRUE
        assert check_trace(f, ends_disabled) is Verdict.PROBABLY_FALSE

    def test_subscript_eliminates_spurious_counterexample(self):
        """With eventually{1}, ending in a disabled state demands one more
        state instead of reporting a spurious presumptive failure."""
        f = Always(0, Eventually(1, menu_enabled))
        ends_disabled = alternating(6, start=True)
        assert check_trace(f, ends_disabled) is Verdict.DEMAND

    def test_subscript_satisfied_when_menu_reenabled_in_time(self):
        f = Always(0, Eventually(1, menu_enabled))
        ends_enabled = alternating(7, start=True)
        assert check_trace(f, ends_enabled) is Verdict.PROBABLY_TRUE

    def test_menu_disabled_forever_keeps_demanding(self):
        """A stuck-disabled menu never fulfils the eventually{1}
        obligation, so the formula demands more states at every step:
        the *runner* is responsible for forcing a verdict once its
        action budget runs out (see repro.checker.runner)."""
        f = Always(0, Eventually(1, menu_enabled))
        trace = alternating(2, start=True) + [{"menuEnabled": False}] * 4
        assert check_trace(f, trace) is Verdict.DEMAND


class TestUntilRelease:
    def test_until_fulfilled(self):
        f = Until(0, p, menu_enabled)
        trace = [
            {"p": True, "menuEnabled": False},
            {"p": True, "menuEnabled": False},
            {"p": False, "menuEnabled": True},
        ]
        assert check_trace(f, trace) is Verdict.DEFINITELY_TRUE

    def test_until_violated_when_left_fails_first(self):
        f = Until(0, p, menu_enabled)
        trace = [
            {"p": True, "menuEnabled": False},
            {"p": False, "menuEnabled": False},
        ]
        assert check_trace(f, trace) is Verdict.DEFINITELY_FALSE

    def test_cannot_reach_secret_page_without_login(self):
        """LogIn release{0} !SecretPage (Section 2)."""
        secret = atom("secretPage")
        f = Release(0, logged_in, ~secret)
        bad = [
            {"loggedIn": False, "secretPage": False},
            {"loggedIn": False, "secretPage": True},
        ]
        good = [
            {"loggedIn": False, "secretPage": False},
            {"loggedIn": True, "secretPage": False},
            {"loggedIn": False, "secretPage": True},
        ]
        assert check_trace(f, bad) is Verdict.DEFINITELY_FALSE
        assert check_trace(f, good) is Verdict.DEFINITELY_TRUE


class TestCheckerBookkeeping:
    def test_initial_state_is_demand(self):
        checker = FormulaChecker(Always(0, p))
        assert checker.verdict is Verdict.DEMAND
        assert checker.needs_more_states
        assert checker.states_seen == 0

    def test_states_seen_counts(self):
        checker = FormulaChecker(Always(0, p))
        checker.observe({"p": True})
        checker.observe({"p": True})
        assert checker.states_seen == 2

    def test_formula_sizes_recorded(self):
        checker = FormulaChecker(Always(0, p))
        checker.observe({"p": True})
        checker.observe({"p": True})
        assert len(checker.formula_sizes) == 2

    def test_simplification_keeps_formula_bounded(self):
        """The Rosu-Havelund blow-up is avoided: nested temporal operators
        progress to a bounded-size formula when simplifying each step."""
        f = Always(0, Eventually(0, p))
        checker = FormulaChecker(f)
        for i in range(50):
            checker.observe({"p": i % 2 == 0})
        sizes = checker.formula_sizes
        assert max(sizes) <= 16

    def test_unsimplified_progression_still_sound(self):
        f = Always(0, Eventually(0, p))
        fast = FormulaChecker(f)
        slow = FormulaChecker(f, simplify_each_step=False)
        for i in range(8):
            state = {"p": i % 2 == 0}
            v_fast = fast.observe(state)
            v_slow = slow.observe(state)
            assert v_fast == v_slow
