"""Laws of the five-valued verdict algebra."""

from hypothesis import given
from hypothesis import strategies as st

from repro.quickltl.verdict import Verdict, conj, conj_all, disj, disj_all, neg

ALL = list(Verdict)
PROPER = [v for v in ALL if v is not Verdict.DEMAND]

verdicts = st.sampled_from(ALL)
proper_verdicts = st.sampled_from(PROPER)


class TestClassification:
    def test_definitive(self):
        assert Verdict.DEFINITELY_TRUE.is_definitive
        assert Verdict.DEFINITELY_FALSE.is_definitive
        assert not Verdict.PROBABLY_TRUE.is_definitive
        assert not Verdict.PROBABLY_FALSE.is_definitive
        assert not Verdict.DEMAND.is_definitive

    def test_presumptive(self):
        assert Verdict.PROBABLY_TRUE.is_presumptive
        assert Verdict.PROBABLY_FALSE.is_presumptive
        assert not Verdict.DEFINITELY_TRUE.is_presumptive
        assert not Verdict.DEMAND.is_presumptive

    def test_positive_negative_partition(self):
        for v in PROPER:
            assert v.is_positive != v.is_negative
        assert not Verdict.DEMAND.is_positive
        assert not Verdict.DEMAND.is_negative

    def test_of_bool(self):
        assert Verdict.of_bool(True) is Verdict.DEFINITELY_TRUE
        assert Verdict.of_bool(False) is Verdict.DEFINITELY_FALSE


class TestNegation:
    def test_swaps_definites(self):
        assert neg(Verdict.DEFINITELY_TRUE) is Verdict.DEFINITELY_FALSE
        assert neg(Verdict.DEFINITELY_FALSE) is Verdict.DEFINITELY_TRUE

    def test_swaps_presumptives(self):
        assert neg(Verdict.PROBABLY_TRUE) is Verdict.PROBABLY_FALSE
        assert neg(Verdict.PROBABLY_FALSE) is Verdict.PROBABLY_TRUE

    def test_demand_self_dual(self):
        assert neg(Verdict.DEMAND) is Verdict.DEMAND

    @given(verdicts)
    def test_involution(self, v):
        assert neg(neg(v)) is v


class TestConnectives:
    @given(verdicts, verdicts)
    def test_commutative(self, a, b):
        assert conj(a, b) is conj(b, a)
        assert disj(a, b) is disj(b, a)

    @given(verdicts, verdicts, verdicts)
    def test_associative(self, a, b, c):
        assert conj(conj(a, b), c) is conj(a, conj(b, c))
        assert disj(disj(a, b), c) is disj(a, disj(b, c))

    @given(verdicts)
    def test_idempotent(self, v):
        assert conj(v, v) is v
        assert disj(v, v) is v

    @given(verdicts)
    def test_units(self, v):
        assert conj(Verdict.DEFINITELY_TRUE, v) is v
        assert disj(Verdict.DEFINITELY_FALSE, v) is v

    @given(verdicts)
    def test_absorbing_elements(self, v):
        assert conj(Verdict.DEFINITELY_FALSE, v) is Verdict.DEFINITELY_FALSE
        assert disj(Verdict.DEFINITELY_TRUE, v) is Verdict.DEFINITELY_TRUE

    @given(verdicts, verdicts)
    def test_de_morgan(self, a, b):
        assert neg(conj(a, b)) is disj(neg(a), neg(b))
        assert neg(disj(a, b)) is conj(neg(a), neg(b))

    @given(proper_verdicts, proper_verdicts)
    def test_proper_values_are_chain_meet_join(self, a, b):
        assert conj(a, b) is (a if a.value <= b.value else b)
        assert disj(a, b) is (a if a.value >= b.value else b)

    def test_demand_absorbs_unless_decided(self):
        d = Verdict.DEMAND
        assert conj(d, Verdict.PROBABLY_TRUE) is d
        assert conj(d, Verdict.PROBABLY_FALSE) is d
        assert conj(d, Verdict.DEFINITELY_TRUE) is d
        assert conj(d, Verdict.DEFINITELY_FALSE) is Verdict.DEFINITELY_FALSE
        assert disj(d, Verdict.PROBABLY_TRUE) is d
        assert disj(d, Verdict.PROBABLY_FALSE) is d
        assert disj(d, Verdict.DEFINITELY_FALSE) is d
        assert disj(d, Verdict.DEFINITELY_TRUE) is Verdict.DEFINITELY_TRUE


class TestAggregates:
    def test_empty_conjunction_is_true(self):
        assert conj_all([]) is Verdict.DEFINITELY_TRUE

    def test_empty_disjunction_is_false(self):
        assert disj_all([]) is Verdict.DEFINITELY_FALSE

    @given(st.lists(verdicts, min_size=1, max_size=6))
    def test_aggregates_match_folds(self, vs):
        expected_conj = vs[0]
        expected_disj = vs[0]
        for v in vs[1:]:
            expected_conj = conj(expected_conj, v)
            expected_disj = disj(expected_disj, v)
        assert conj_all(vs) is expected_conj
        assert disj_all(vs) is expected_disj

    def test_conj_all_short_circuits(self):
        def gen():
            yield Verdict.DEFINITELY_FALSE
            raise AssertionError("must short-circuit")

        assert conj_all(gen()) is Verdict.DEFINITELY_FALSE
