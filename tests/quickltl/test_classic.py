"""Classic LTL on lassos: the Figure 3 identities and QuickLTL soundness."""

from hypothesis import given

from repro.quickltl import (
    Always,
    And,
    BOTTOM,
    Eventually,
    Not,
    NextReq,
    Or,
    Release,
    TOP,
    Until,
    atom,
    check_trace,
)
from repro.quickltl.classic import Lasso, extensions, holds

from .strategies import classic_formulas, examples, lassos, traces

import pytest

P = atom("p")
Q = atom("q")


class TestLasso:
    def test_loop_must_be_nonempty(self):
        with pytest.raises(ValueError):
            Lasso((), ())

    def test_successor_wraps_into_loop(self):
        l = Lasso(({"p": 1},), ({"p": 2}, {"p": 3}))
        assert l.successor(0) == 1
        assert l.successor(1) == 2
        assert l.successor(2) == 1  # wraps to loop start

    def test_state_lookup(self):
        l = Lasso(({"p": 1},), ({"p": 2},))
        assert l.state(0) == {"p": 1}
        assert l.state(1) == {"p": 2}


class TestBasicSemantics:
    def test_always_on_constant_true_loop(self):
        l = Lasso((), ({"p": True},))
        assert holds(Always(0, P), l)

    def test_always_fails_if_loop_violates(self):
        l = Lasso(({"p": True},), ({"p": False},))
        assert not holds(Always(0, P), l)

    def test_eventually_found_in_loop(self):
        l = Lasso(({"p": False},), ({"p": False}, {"p": True}))
        assert holds(Eventually(0, P), l)

    def test_eventually_false_when_never(self):
        l = Lasso((), ({"p": False},))
        assert not holds(Eventually(0, P), l)

    def test_infinitely_often_on_alternating_loop(self):
        l = Lasso((), ({"p": True}, {"p": False}))
        assert holds(Always(0, Eventually(0, P)), l)
        assert not holds(Eventually(0, Always(0, P)), l)

    def test_next_operators_coincide(self):
        from repro.quickltl import NextStrong, NextWeak

        l = Lasso(({"p": False},), ({"p": True},))
        for ctor in (NextReq, NextWeak, NextStrong):
            assert holds(ctor(P), l)


class TestFigure3Identities:
    """Identities 1-11 of Figure 3, checked on random lassos."""

    @given(lassos())
    @examples(150)
    def test_negation_identities(self, lasso):
        assert holds(Not(NextReq(P)), lasso) == holds(NextReq(Not(P)), lasso)
        assert holds(Not(Eventually(0, P)), lasso) == holds(Always(0, Not(P)), lasso)
        assert holds(Not(Always(0, P)), lasso) == holds(Eventually(0, Not(P)), lasso)
        assert holds(Not(Until(0, P, Q)), lasso) == holds(
            Release(0, Not(P), Not(Q)), lasso
        )
        assert holds(Not(Release(0, P, Q)), lasso) == holds(
            Until(0, Not(P), Not(Q)), lasso
        )

    @given(lassos())
    @examples(150)
    def test_eventually_is_top_until(self, lasso):
        assert holds(Eventually(0, P), lasso) == holds(Until(0, TOP, P), lasso)

    @given(lassos())
    @examples(150)
    def test_always_is_bottom_release(self, lasso):
        assert holds(Always(0, P), lasso) == holds(Release(0, BOTTOM, P), lasso)

    @given(lassos())
    @examples(150)
    def test_expansion_identities(self, lasso):
        # always p == p && next always p
        assert holds(Always(0, P), lasso) == holds(
            And(P, NextReq(Always(0, P))), lasso
        )
        # eventually p == p || next eventually p
        assert holds(Eventually(0, P), lasso) == holds(
            Or(P, NextReq(Eventually(0, P))), lasso
        )
        # p U q == q || (p && next (p U q))
        assert holds(Until(0, P, Q), lasso) == holds(
            Or(Q, And(P, NextReq(Until(0, P, Q)))), lasso
        )
        # p R q == q && (p || next (p R q))
        assert holds(Release(0, P, Q), lasso) == holds(
            And(Q, Or(P, NextReq(Release(0, P, Q)))), lasso
        )

    @given(lassos(), classic_formulas())
    @examples(100)
    def test_subscripts_do_not_matter_classically(self, lasso, formula):
        from repro.quickltl.rvltl import erase_subscripts

        assert holds(formula, lasso) == holds(erase_subscripts(formula), lasso)


class TestQuickLTLSoundness:
    """Definitive verdicts are sound with respect to classic LTL: if the
    progression engine answers definitively on a finite prefix, then every
    small lasso completion of that prefix agrees (Section 5.5 relates
    QuickLTL to infinite-trace dialects; this is the testable core)."""

    @given(classic_formulas(max_depth=2), traces(min_size=1, max_size=4))
    @examples(150)
    def test_definitely_true_holds_on_all_completions(self, formula, trace):
        from repro.quickltl import Verdict

        verdict = check_trace(formula, trace, stop_on_definitive=False)
        if verdict is Verdict.DEFINITELY_TRUE:
            all_states = [
                {"p": a, "q": b, "r": c}
                for a in (False, True)
                for b in (False, True)
                for c in (False, True)
            ]
            for lasso in extensions(trace, all_states, max_loop=1):
                assert holds(formula, lasso)

    @given(classic_formulas(max_depth=2), traces(min_size=1, max_size=4))
    @examples(150)
    def test_definitely_false_fails_on_all_completions(self, formula, trace):
        from repro.quickltl import Verdict

        verdict = check_trace(formula, trace, stop_on_definitive=False)
        if verdict is Verdict.DEFINITELY_FALSE:
            all_states = [
                {"p": a, "q": b, "r": c}
                for a in (False, True)
                for b in (False, True)
                for c in (False, True)
            ]
            for lasso in extensions(trace, all_states, max_loop=1):
                assert not holds(formula, lasso)
