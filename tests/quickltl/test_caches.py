"""`intern_delta` regions and the bounded `ProgressionCaches`."""

import pytest

from repro.quickltl import (
    Always,
    And,
    FormulaChecker,
    NextReq,
    ProgressionCaches,
    atom,
    intern_delta,
)

P = atom("p")
Q = atom("q")


def fresh_nodes(count):
    """Construct `count` new interned nodes (all misses the first time)."""
    return [NextReq(Always(depth + 2, And(P, Q))) for depth in range(count)]


class TestInternDelta:
    def test_live_deltas_while_open(self):
        # Settle the table; hold the nodes (the intern table is weak, so
        # dropping them would let re-building miss again).
        settled = fresh_nodes(3)
        with intern_delta() as delta:
            assert delta.as_tuple() == (0, 0)
            rebuilt = fresh_nodes(3)
            assert delta.misses == 0
            assert delta.hits > 0
        assert rebuilt[0] is settled[0]

    def test_freezes_at_exit(self):
        with intern_delta() as delta:
            fresh_nodes(2)
        frozen = delta.as_tuple()
        fresh_nodes(2)  # outside the region: must not move the counters
        assert delta.as_tuple() == frozen
        assert delta.constructions == delta.hits + delta.misses

    def test_reentry_resnapshots(self):
        delta = intern_delta()
        with delta:
            fresh_nodes(2)
        first = delta.as_tuple()
        with delta:
            pass
        assert delta.as_tuple() == (0, 0)
        assert first != (0, 0)

    def test_hit_ratio(self):
        settled = fresh_nodes(4)
        with intern_delta() as delta:
            fresh_nodes(4)  # every construction is served by the table
        assert settled is not None
        assert delta.hit_ratio == 1.0
        empty = intern_delta()
        assert empty.hit_ratio == 0.0


class TestBoundedCaches:
    def test_max_entries_must_be_positive(self):
        with pytest.raises(ValueError):
            ProgressionCaches(max_entries=0)
        ProgressionCaches(max_entries=1)  # the degenerate bound is legal

    def test_clear_reports_what_it_dropped(self):
        caches = ProgressionCaches()
        checker = FormulaChecker(Always(3, And(P, Q)), caches=caches)
        checker.observe({"p": True, "q": True})
        assert len(caches) > 0
        report = caches.clear()
        assert set(report) == {"simplify", "step", "valuation", "sizes",
                               "total"}
        assert report["total"] == sum(
            count for table, count in report.items() if table != "total"
        )
        assert report["total"] > 0
        assert len(caches) == 0
        assert caches.trims == 1
        assert caches.evicted_entries == report["total"]

    def test_clearing_nothing_is_not_a_trim(self):
        caches = ProgressionCaches()
        assert caches.clear()["total"] == 0
        assert caches.trims == 0
        assert caches.evicted_entries == 0

    def test_long_run_stays_under_the_bound(self):
        caches = ProgressionCaches(max_entries=16)
        formula = Always(4, And(P, Q))
        for round_index in range(30):
            checker = FormulaChecker(formula, caches=caches)
            for step in range(6):
                checker.observe({
                    "p": True, "q": (round_index + step) % 7 != 0,
                })
            # trim() runs inside progression: the bound holds between
            # observations up to one batch of insertions.
            assert len(caches) <= 16 + 32
        assert caches.trims > 0
        assert caches.evicted_entries > 0

    def test_bounded_and_unbounded_checkers_agree(self):
        formula = Always(6, And(P, Q))
        trace = [
            {"p": True, "q": index % 5 != 3} for index in range(12)
        ]
        bounded = FormulaChecker(
            formula, caches=ProgressionCaches(max_entries=4)
        )
        unbounded = FormulaChecker(formula, caches=ProgressionCaches())
        for state in trace:
            assert bounded.observe(state) is unbounded.observe(state)
        assert bounded.verdict is unbounded.verdict
