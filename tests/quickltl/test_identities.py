"""Semantic laws of QuickLTL on finite traces (beyond the oracle tests).

These pin down how the subscript annotations interact with the verdict
lattice: subscripts trade presumptive answers for demands (more testing)
but never flip an answer's polarity, and the Figure 5 expansions are
definitionally exact.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.quickltl import (
    Always,
    And,
    Eventually,
    NextReq,
    NextStrong,
    NextWeak,
    Or,
    Release,
    Until,
    Verdict,
    direct_eval,
)

from .strategies import ATOMS, examples, formulas, traces

p = ATOMS["p"]
q = ATOMS["q"]


class TestExpansionIdentities:
    """Figure 5: the subscripted operators *are* their expansions."""

    @given(traces(max_size=6), st.integers(0, 3))
    @examples(200)
    def test_always_expansion(self, trace, n):
        lhs = Always(n, p)
        if n > 0:
            rhs = And(p, NextReq(Always(n - 1, p)))
        else:
            rhs = And(p, NextWeak(Always(0, p)))
        assert direct_eval(lhs, trace) == direct_eval(rhs, trace)

    @given(traces(max_size=6), st.integers(0, 3))
    @examples(200)
    def test_eventually_expansion(self, trace, n):
        lhs = Eventually(n, p)
        if n > 0:
            rhs = Or(p, NextReq(Eventually(n - 1, p)))
        else:
            rhs = Or(p, NextStrong(Eventually(0, p)))
        assert direct_eval(lhs, trace) == direct_eval(rhs, trace)

    @given(traces(max_size=6), st.integers(0, 3))
    @examples(200)
    def test_until_expansion(self, trace, n):
        lhs = Until(n, p, q)
        rest = (
            NextReq(Until(n - 1, p, q)) if n > 0 else NextStrong(Until(0, p, q))
        )
        rhs = Or(q, And(p, rest))
        assert direct_eval(lhs, trace) == direct_eval(rhs, trace)

    @given(traces(max_size=6), st.integers(0, 3))
    @examples(200)
    def test_release_expansion(self, trace, n):
        lhs = Release(n, p, q)
        rest = (
            NextReq(Release(n - 1, p, q)) if n > 0 else NextWeak(Release(0, p, q))
        )
        rhs = And(q, Or(p, rest))
        assert direct_eval(lhs, trace) == direct_eval(rhs, trace)

    @given(traces(max_size=6), st.integers(0, 2))
    @examples(200)
    def test_eventually_is_top_until(self, trace, n):
        from repro.quickltl import TOP

        assert direct_eval(Eventually(n, p), trace) == direct_eval(
            Until(n, TOP, p), trace
        )

    @given(traces(max_size=6), st.integers(0, 2))
    @examples(200)
    def test_always_is_bottom_release(self, trace, n):
        from repro.quickltl import BOTTOM

        assert direct_eval(Always(n, p), trace) == direct_eval(
            Release(n, BOTTOM, p), trace
        )


def _compatible(small: Verdict, large: Verdict) -> bool:
    """Raising a subscript may only (a) keep the verdict, or (b) turn a
    presumptive answer into a demand for more states.  Definitive
    verdicts are immune, and no answer ever flips polarity."""
    if small == large:
        return True
    return large is Verdict.DEMAND and small.is_presumptive


class TestSubscriptMonotonicity:
    @given(traces(max_size=7), st.integers(0, 3), st.integers(0, 3))
    @examples(300)
    def test_always_subscripts_trade_presumption_for_demand(self, trace, a, b):
        low, high = sorted((a, b))
        assert _compatible(
            direct_eval(Always(low, p), trace),
            direct_eval(Always(high, p), trace),
        )

    @given(traces(max_size=7), st.integers(0, 3), st.integers(0, 3))
    @examples(300)
    def test_eventually_subscripts_trade_presumption_for_demand(self, trace, a, b):
        low, high = sorted((a, b))
        assert _compatible(
            direct_eval(Eventually(low, p), trace),
            direct_eval(Eventually(high, p), trace),
        )

    @given(traces(max_size=7), st.integers(0, 3), st.integers(0, 3))
    @examples(200)
    def test_until_subscripts_trade_presumption_for_demand(self, trace, a, b):
        low, high = sorted((a, b))
        assert _compatible(
            direct_eval(Until(low, p, q), trace),
            direct_eval(Until(high, p, q), trace),
        )

    @given(traces(max_size=7), st.integers(0, 3), st.integers(0, 3))
    @examples(200)
    def test_release_subscripts_trade_presumption_for_demand(self, trace, a, b):
        low, high = sorted((a, b))
        assert _compatible(
            direct_eval(Release(low, p, q), trace),
            direct_eval(Release(high, p, q), trace),
        )

    @given(traces(min_size=5, max_size=8))
    @examples(200)
    def test_long_enough_traces_discharge_the_subscript(self, trace):
        """Once the trace is longer than the subscript, the subscripted
        operator agrees with its subscript-0 (RV-LTL) reading."""
        n = len(trace) - 1
        assert direct_eval(Always(n, p), trace) == direct_eval(Always(0, p), trace)
        assert direct_eval(Eventually(n, p), trace) == direct_eval(
            Eventually(0, p), trace
        )


class TestDualityOnFiniteTraces:
    @given(formulas(max_depth=3), traces(max_size=6))
    @examples(200)
    def test_double_negation(self, formula, trace):
        from repro.quickltl import Not

        assert direct_eval(Not(Not(formula)), trace) == direct_eval(formula, trace)

    @given(traces(max_size=6), st.integers(0, 3))
    @examples(200)
    def test_always_eventually_de_morgan(self, trace, n):
        from repro.quickltl import Not
        from repro.quickltl.verdict import neg

        assert direct_eval(Not(Always(n, p)), trace) == neg(
            direct_eval(Always(n, p), trace)
        )
        assert direct_eval(Not(Always(n, p)), trace) == direct_eval(
            Eventually(n, Not(p)), trace
        )
