"""Directed tests for the unrolling relation (Figure 6)."""

import pytest

from repro.quickltl import (
    Always,
    And,
    BOTTOM,
    Defer,
    Eventually,
    Not,
    NextReq,
    NextStrong,
    NextWeak,
    Or,
    Release,
    TOP,
    Until,
    atom,
    unroll,
)

P = atom("p")
Q = atom("q")
T = {"p": True, "q": True}
F = {"p": False, "q": False}


class TestBaseCases:
    def test_constants(self):
        assert unroll(TOP, T) == TOP
        assert unroll(BOTTOM, T) == BOTTOM

    def test_atom_evaluates_against_state(self):
        assert unroll(P, T) == TOP
        assert unroll(P, F) == BOTTOM

    def test_negation_is_homomorphic(self):
        assert unroll(Not(P), F) == Not(BOTTOM)

    def test_connectives_are_homomorphic(self):
        assert unroll(And(P, Q), T) == And(TOP, TOP)
        assert unroll(Or(P, Q), F) == Or(BOTTOM, BOTTOM)

    def test_next_operators_pass_through(self):
        for ctor in (NextReq, NextWeak, NextStrong):
            assert unroll(ctor(P), T) == ctor(P)


class TestTemporalExpansions:
    def test_always_positive_subscript_uses_required_next(self):
        assert unroll(Always(2, P), T) == And(TOP, NextReq(Always(1, P)))

    def test_always_zero_subscript_uses_weak_next(self):
        assert unroll(Always(0, P), T) == And(TOP, NextWeak(Always(0, P)))

    def test_eventually_positive_subscript_uses_required_next(self):
        assert unroll(Eventually(2, P), F) == Or(BOTTOM, NextReq(Eventually(1, P)))

    def test_eventually_zero_subscript_uses_strong_next(self):
        assert unroll(Eventually(0, P), F) == Or(BOTTOM, NextStrong(Eventually(0, P)))

    def test_until_positive_subscript(self):
        expected = Or(BOTTOM, And(TOP, NextReq(Until(0, P, Q))))
        assert unroll(Until(1, P, Q), {"p": True, "q": False}) == expected

    def test_until_zero_subscript(self):
        expected = Or(BOTTOM, And(TOP, NextStrong(Until(0, P, Q))))
        assert unroll(Until(0, P, Q), {"p": True, "q": False}) == expected

    def test_release_positive_subscript(self):
        expected = And(TOP, Or(BOTTOM, NextReq(Release(0, P, Q))))
        assert unroll(Release(1, P, Q), {"p": False, "q": True}) == expected

    def test_release_zero_subscript(self):
        expected = And(TOP, Or(BOTTOM, NextWeak(Release(0, P, Q))))
        assert unroll(Release(0, P, Q), {"p": False, "q": True}) == expected

    def test_subscript_counts_down_not_below_zero(self):
        step1 = unroll(Always(1, P), T)
        assert step1 == And(TOP, NextReq(Always(0, P)))

    def test_nested_operators_unroll_inner_body(self):
        result = unroll(Always(0, Eventually(0, P)), F)
        inner = Or(BOTTOM, NextStrong(Eventually(0, P)))
        assert result == And(inner, NextWeak(Always(0, Eventually(0, P))))


class TestDefer:
    def test_defer_forced_with_current_state(self):
        d = Defer("pick", lambda s: P if s["q"] else Q)
        assert unroll(d, {"p": True, "q": True}) == TOP
        assert unroll(d, {"p": True, "q": False}) == BOTTOM

    def test_defer_inside_temporal_body_forced_each_unroll(self):
        seen = []

        def build(state):
            seen.append(state["p"])
            return P

        f = Always(1, Defer("d", build))
        unroll(f, T)
        assert seen == [True]

    def test_unknown_node_rejected(self):
        with pytest.raises(TypeError):
            unroll("not a formula", T)
