"""Parser and pretty-printer for the QuickLTL surface syntax."""

import pytest
from hypothesis import given

from repro.quickltl import (
    Always,
    And,
    BOTTOM,
    Eventually,
    FormulaParseError,
    Not,
    NextReq,
    NextStrong,
    NextWeak,
    Or,
    Release,
    TOP,
    Until,
    atom,
    parse_formula,
    pretty,
)

from .strategies import examples, formulas


def parse(text, **kwargs):
    return parse_formula(text, **kwargs)


class TestBasicParsing:
    def test_constants(self):
        assert parse("true") == TOP
        assert parse("false") == BOTTOM

    def test_atom(self):
        f = parse("menuEnabled")
        assert f.name == "menuEnabled"

    def test_negation(self):
        f = parse("!p")
        assert isinstance(f, Not)

    def test_not_keyword(self):
        assert pretty(parse("not p")) == pretty(parse("!p"))

    def test_next_variants(self):
        assert isinstance(parse("next p"), NextReq)
        assert isinstance(parse("wnext p"), NextWeak)
        assert isinstance(parse("snext p"), NextStrong)

    def test_subscripted_operators(self):
        f = parse("always{100} eventually{5} menuEnabled")
        assert isinstance(f, Always) and f.n == 100
        assert isinstance(f.body, Eventually) and f.body.n == 5

    def test_default_subscript(self):
        f = parse("always p", default_subscript=42)
        assert f.n == 42

    def test_paper_default_subscript_is_100(self):
        assert parse("always p").n == 100

    def test_until_release(self):
        f = parse("p until{3} q")
        assert isinstance(f, Until) and f.n == 3
        g = parse("p release{2} q")
        assert isinstance(g, Release) and g.n == 2


class TestPrecedence:
    def test_and_binds_tighter_than_or(self):
        f = parse("p || q && r")
        assert isinstance(f, Or)
        assert isinstance(f.right, And)

    def test_until_binds_tighter_than_and(self):
        f = parse("p && q until{1} r")
        assert isinstance(f, And)
        assert isinstance(f.right, Until)

    def test_unary_binds_tightest(self):
        f = parse("!p && q")
        assert isinstance(f, And)
        assert isinstance(f.left, Not)

    def test_until_is_right_associative(self):
        f = parse("p until{1} q until{2} r")
        assert isinstance(f, Until) and f.n == 1
        assert isinstance(f.right, Until) and f.right.n == 2

    def test_parentheses_override(self):
        f = parse("(p || q) && r")
        assert isinstance(f, And)
        assert isinstance(f.left, Or)

    def test_temporal_scope_extends_right(self):
        f = parse("always{1} p && q")
        # 'always' is unary, so it grabs only p; && combines afterwards
        assert isinstance(f, And)
        assert isinstance(f.left, Always)


class TestAtomSharing:
    def test_same_identifier_shares_atom_object(self):
        f = parse("p && p")
        assert f.left is f.right

    def test_known_atoms_mapping(self):
        p = atom("p")
        f = parse("p", atoms={"p": p})
        assert f is p

    def test_unknown_atom_rejected_with_mapping(self):
        with pytest.raises(FormulaParseError, match="unknown atom"):
            parse("q", atoms={"p": atom("p")})


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "p &&",
            "(p",
            "p)",
            "always{} p",
            "always{x} p",
            "p until q r",
            "&& p",
            "p @ q",
            "42",
        ],
    )
    def test_malformed_input(self, text):
        with pytest.raises(FormulaParseError):
            parse(text)


class TestRoundTrip:
    @given(formulas(max_depth=4))
    @examples(300)
    def test_pretty_then_parse_is_identity(self, formula):
        """pretty-printing and reparsing rebuilds the same tree, up to
        atom identity (the parser shares atoms by name)."""
        text = pretty(formula)
        reparsed = parse_formula(text)
        assert pretty(reparsed) == text
        assert _shape(reparsed) == _shape(formula)


def _shape(formula):
    """Structural fingerprint ignoring atom predicate identity."""
    from repro.quickltl import Atom, Top, Bottom

    if isinstance(formula, Atom):
        return ("atom", formula.name)
    if isinstance(formula, (Top, Bottom)):
        return (type(formula).__name__,)
    if isinstance(formula, (And, Or, Until, Release)):
        parts = (
            _shape(formula.left),
            _shape(formula.right),
        )
        n = getattr(formula, "n", None)
        return (type(formula).__name__, n) + parts
    if isinstance(formula, (Always, Eventually)):
        return (type(formula).__name__, formula.n, _shape(formula.body))
    return (type(formula).__name__, _shape(formula.operand))
