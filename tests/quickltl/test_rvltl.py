"""RV-LTL and finite-LTL comparison semantics (Section 2.1)."""

from hypothesis import given

from repro.quickltl import (
    Always,
    Eventually,
    NextReq,
    NextStrong,
    NextWeak,
    Until,
    Verdict,
    atom,
    check_trace,
    direct_eval,
    erase_subscripts,
    fltl_eval,
    rv_eval,
)

from .strategies import examples, formulas, traces

menu = atom("menuEnabled")
p = atom("p")


class TestEraseSubscripts:
    def test_zeroes_all_subscripts(self):
        f = Always(100, Eventually(5, p))
        assert erase_subscripts(f) == Always(0, Eventually(0, p))

    def test_required_next_becomes_weak(self):
        assert erase_subscripts(NextReq(p)) == NextWeak(p)

    def test_weak_strong_preserved(self):
        assert erase_subscripts(NextWeak(p)) == NextWeak(p)
        assert erase_subscripts(NextStrong(p)) == NextStrong(p)

    def test_until_subscript_erased(self):
        assert erase_subscripts(Until(7, p, menu)) == Until(0, p, menu)


class TestRVNeverDemands:
    @given(formulas(), traces(max_size=8))
    @examples(300)
    def test_rv_eval_returns_proper_verdict(self, formula, trace):
        """Subscript-erased formulas never demand more states: RV-LTL is
        total on partial traces."""
        assert rv_eval(formula, trace) is not Verdict.DEMAND

    @given(formulas(), traces(max_size=8))
    @examples(200)
    def test_subscript_zero_quickltl_is_rvltl(self, formula, trace):
        """QuickLTL restricted to subscript 0 *is* RV-LTL (the paper calls
        QuickLTL 'by definition a superset' of RV-LTL)."""
        erased = erase_subscripts(formula)
        assert direct_eval(erased, trace) == rv_eval(formula, trace)
        assert check_trace(erased, trace, stop_on_definitive=False) == rv_eval(
            formula, trace
        )


class TestSpuriousCounterexamples:
    """The Section 2.1 example: 'the menu should never be disabled
    forever' on a continuously alternating menu."""

    def alternating(self, n, start=True):
        return [{"menuEnabled": (i % 2 == 0) == start} for i in range(n)]

    def test_rvltl_depends_on_last_state(self):
        f = Always(0, Eventually(0, menu))
        assert rv_eval(f, self.alternating(6, start=False)).is_positive
        assert rv_eval(f, self.alternating(6, start=True)).is_negative

    def test_quickltl_subscript_removes_the_flap(self):
        """With eventually{1}, both alternating traces give a positive or
        demanding answer -- never a spurious presumptive failure."""
        f = Always(0, Eventually(1, menu))
        good = check_trace(f, self.alternating(6, start=False), stop_on_definitive=False)
        pending = check_trace(f, self.alternating(6, start=True), stop_on_definitive=False)
        assert good is Verdict.PROBABLY_TRUE
        assert pending is Verdict.DEMAND

    def test_real_failures_keep_demanding_until_runner_forces(self):
        """A genuinely stuck menu demands states forever; the runner's
        forced valuation (polarity rule) then reports probably-false.
        Here we check the raw formula verdict stays DEMAND."""
        f = Always(0, Eventually(1, menu))
        stuck = self.alternating(2) + [{"menuEnabled": False}] * 5
        assert check_trace(f, stuck, stop_on_definitive=False) is Verdict.DEMAND


class TestFiniteLTL:
    def test_collapse_of_presumptive_true(self):
        f = Always(0, p)
        assert fltl_eval(f, [{"p": True}] * 3) is True

    def test_collapse_of_presumptive_false(self):
        f = Eventually(0, p)
        assert fltl_eval(f, [{"p": False}] * 3) is False

    def test_definitive_cases_unchanged(self):
        assert fltl_eval(Eventually(0, p), [{"p": False}, {"p": True}]) is True
        assert fltl_eval(Always(0, p), [{"p": True}, {"p": False}]) is False

    @given(formulas(), traces(max_size=6))
    @examples(200)
    def test_fltl_is_positivity_of_rv(self, formula, trace):
        assert fltl_eval(formula, trace) == rv_eval(formula, trace).is_positive
