"""Hash-consing invariants and the compiled engine's memoized phases.

The compiled evaluation pipeline rests on two properties:

* **interning**: structurally equal formulas built through the public
  constructors are the *same object* (so node-keyed memo caches are
  exact), with ``==``/``hash`` staying consistent with that identity;
* **simplify** is idempotent (a second pass is the first pass's
  fixpoint -- what makes a persistent simplify memo sound) and, on
  negation-normal inputs, size-nonincreasing (pushing ``!`` through a
  connective legitimately grows a term by its De Morgan dual, so the
  size claim is stated for formulas whose negations sit on atoms).
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.quickltl import (
    Always,
    And,
    Eventually,
    FormulaChecker,
    Not,
    NextReq,
    NextStrong,
    NextWeak,
    Or,
    ProgressionCaches,
    Release,
    TOP,
    BOTTOM,
    Until,
    formula_size,
    intern_stats,
    simplify,
    unroll,
)
from repro.quickltl.syntax import Defer

from ..strategies import ATOMS, PROPOSITIONS, examples, formulas, states, traces


def rebuild(formula):
    """Reconstruct ``formula`` node by node through the public
    constructors -- a structurally equal but independently built copy."""
    if isinstance(formula, (And, Or)):
        return type(formula)(rebuild(formula.left), rebuild(formula.right))
    if isinstance(formula, (Until, Release)):
        return type(formula)(
            formula.n, rebuild(formula.left), rebuild(formula.right)
        )
    if isinstance(formula, (Not, NextReq, NextWeak, NextStrong)):
        return type(formula)(rebuild(formula.operand))
    if isinstance(formula, (Always, Eventually)):
        return type(formula)(formula.n, rebuild(formula.body))
    return formula  # constants and shared atoms


@st.composite
def nnf_formulas(draw, max_depth: int = 4, max_subscript: int = 3):
    """Formulas whose negations sit only on atoms (negation normal
    form), the domain of the size-nonincreasing claim."""
    if max_depth <= 0:
        return draw(
            st.sampled_from(
                [TOP, BOTTOM]
                + [ATOMS[p] for p in PROPOSITIONS]
                + [Not(ATOMS[p]) for p in PROPOSITIONS]
            )
        )
    sub = lambda: nnf_formulas(
        max_depth=max_depth - 1, max_subscript=max_subscript
    )
    n = draw(st.integers(min_value=0, max_value=max_subscript))
    choice = draw(st.integers(min_value=0, max_value=9))
    if choice == 0:
        return draw(
            st.sampled_from(
                [TOP, BOTTOM]
                + [ATOMS[p] for p in PROPOSITIONS]
                + [Not(ATOMS[p]) for p in PROPOSITIONS]
            )
        )
    if choice == 1:
        return And(draw(sub()), draw(sub()))
    if choice == 2:
        return Or(draw(sub()), draw(sub()))
    if choice == 3:
        return NextReq(draw(sub()))
    if choice == 4:
        return NextWeak(draw(sub()))
    if choice == 5:
        return NextStrong(draw(sub()))
    if choice == 6:
        return Always(n, draw(sub()))
    if choice == 7:
        return Eventually(n, draw(sub()))
    if choice == 8:
        return Until(n, draw(sub()), draw(sub()))
    return Release(n, draw(sub()), draw(sub()))


class TestInterningInvariant:
    @given(formulas())
    @examples(300)
    def test_structurally_equal_is_same_object(self, formula):
        assert rebuild(formula) is formula

    @given(formulas())
    @examples(200)
    def test_eq_and_hash_are_consistent(self, formula):
        copy = rebuild(formula)
        assert copy == formula
        assert hash(copy) == hash(formula)

    @given(formulas(), formulas())
    @examples(200)
    def test_identity_coincides_with_equality(self, left, right):
        # Interned nodes: `is` and `==` answer the same question.
        assert (left is right) == (left == right)

    def test_rebuilding_is_a_pure_intern_hit(self):
        formula = Always(3, And(ATOMS["p"], Eventually(1, ATOMS["q"])))
        hits0, misses0 = intern_stats()
        again = Always(3, And(ATOMS["p"], Eventually(1, ATOMS["q"])))
        hits1, misses1 = intern_stats()
        assert again is formula
        assert misses1 == misses0  # nothing allocated
        assert hits1 > hits0

    def test_defers_intern_by_closure_identity(self):
        build = lambda state: TOP
        assert Defer("d", build) is Defer("d", build)
        assert Defer("d", build) is not Defer("d", lambda state: TOP)

    def test_immutability_is_enforced(self):
        formula = And(ATOMS["p"], ATOMS["q"])
        try:
            formula.left = ATOMS["r"]
        except AttributeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("interned nodes must be immutable")


class TestSimplifyProperties:
    @given(formulas())
    @examples(300)
    def test_simplify_is_idempotent(self, formula):
        once = simplify(formula)
        assert simplify(once) is once  # interning: fixpoint == identity

    @given(nnf_formulas())
    @examples(300)
    def test_simplify_is_size_nonincreasing_on_nnf(self, formula):
        assert formula_size(simplify(formula)) <= formula_size(formula)

    @given(formulas(), states())
    @examples(200)
    def test_unrolled_simplification_is_idempotent(self, formula, state):
        # The shape the checker actually simplifies: unroll output.
        once = simplify(unroll(formula, state))
        assert simplify(once) is once

    @given(nnf_formulas(), states())
    @examples(200)
    def test_unrolled_simplification_shrinks_on_nnf(self, formula, state):
        unrolled = unroll(formula, state)
        assert formula_size(simplify(unrolled)) <= formula_size(unrolled)

    @given(formulas())
    @examples(200)
    def test_memoized_simplify_matches_unmemoized(self, formula):
        memo = {}
        assert simplify(formula, memo) is simplify(formula)
        # And the memo replays exactly.
        assert simplify(formula, memo) is simplify(formula)


class TestSharedCaches:
    @given(formulas(), traces(min_size=1, max_size=6))
    @examples(150)
    def test_shared_caches_do_not_change_verdicts(self, formula, trace):
        caches = ProgressionCaches()
        private = FormulaChecker(formula)
        shared_a = FormulaChecker(formula, caches=caches)
        shared_b = FormulaChecker(formula, caches=caches)  # warm replay
        for state in trace:
            expected = private.observe(state)
            assert shared_a.observe(state) is expected
        for state in trace:
            shared_b.observe(state)
        assert shared_b.verdict is private.verdict
        assert shared_b.formula_sizes == private.formula_sizes


class TestIterativeFormulaSize:
    def test_deep_residual_does_not_recurse(self):
        # The seed's recursive formula_size raised RecursionError here.
        formula = ATOMS["p"]
        for _ in range(5000):
            formula = NextReq(formula)
        assert formula_size(formula) == 5001

    def test_shared_subterms_count_as_tree_nodes(self):
        shared = And(ATOMS["p"], ATOMS["q"])
        formula = And(shared, shared)  # a DAG: the tree size counts twice
        assert formula_size(formula) == 7

    def test_sizes_memo_is_reusable(self):
        sizes = {}
        formula = Always(2, And(ATOMS["p"], ATOMS["q"]))
        assert formula_size(formula, sizes) == 4
        assert sizes[formula] == 4
        assert formula_size(formula, sizes) == 4
