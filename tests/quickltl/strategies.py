"""Back-compat shim: the shared strategies moved to ``tests/strategies``.

Import from :mod:`tests.strategies` in new code -- it also carries the
Specstrom value/action strategies and the :func:`~tests.strategies.examples`
settings helper.
"""

from __future__ import annotations

from tests.strategies import (
    ATOMS,
    PROPOSITIONS,
    classic_formulas,
    examples,
    formulas,
    lassos,
    states,
    subscripts,
    traces,
)

__all__ = [
    "ATOMS",
    "PROPOSITIONS",
    "classic_formulas",
    "examples",
    "formulas",
    "lassos",
    "states",
    "subscripts",
    "traces",
]
