"""Shared hypothesis strategies for QuickLTL tests.

States are dictionaries over a small fixed alphabet of proposition names;
formulas are drawn recursively over that alphabet with small subscripts so
that oracle comparisons stay fast.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.quickltl import (
    Always,
    And,
    BOTTOM,
    Eventually,
    Not,
    NextReq,
    NextStrong,
    NextWeak,
    Or,
    Release,
    TOP,
    Until,
    atom,
)

PROPOSITIONS = ("p", "q", "r")

#: Atoms are shared across a whole test run so that structural equality
#: (and therefore simplifier deduplication) can actually fire.
ATOMS = {name: atom(name) for name in PROPOSITIONS}


def states(props=PROPOSITIONS):
    return st.fixed_dictionaries({name: st.booleans() for name in props})


def traces(min_size: int = 1, max_size: int = 8, props=PROPOSITIONS):
    return st.lists(states(props), min_size=min_size, max_size=max_size)


def subscripts(max_n: int = 3):
    return st.integers(min_value=0, max_value=max_n)


@st.composite
def formulas(draw, max_depth: int = 4, max_subscript: int = 3):
    """A random QuickLTL formula of bounded depth."""
    if max_depth <= 0:
        return draw(
            st.sampled_from([TOP, BOTTOM] + [ATOMS[name] for name in PROPOSITIONS])
        )
    sub = lambda: formulas(max_depth=max_depth - 1, max_subscript=max_subscript)
    n = draw(subscripts(max_subscript))
    choice = draw(st.integers(min_value=0, max_value=10))
    if choice == 0:
        return draw(st.sampled_from([TOP, BOTTOM] + [ATOMS[p] for p in PROPOSITIONS]))
    if choice == 1:
        return Not(draw(sub()))
    if choice == 2:
        return And(draw(sub()), draw(sub()))
    if choice == 3:
        return Or(draw(sub()), draw(sub()))
    if choice == 4:
        return NextReq(draw(sub()))
    if choice == 5:
        return NextWeak(draw(sub()))
    if choice == 6:
        return NextStrong(draw(sub()))
    if choice == 7:
        return Always(n, draw(sub()))
    if choice == 8:
        return Eventually(n, draw(sub()))
    if choice == 9:
        return Until(n, draw(sub()), draw(sub()))
    return Release(n, draw(sub()), draw(sub()))


@st.composite
def classic_formulas(draw, max_depth: int = 3):
    """Formulas without explicit next operators, for classic-LTL tests
    (all nexts coincide on infinite traces, so this loses no coverage for
    identity checking while keeping lassos cheap)."""
    if max_depth <= 0:
        return draw(
            st.sampled_from([TOP, BOTTOM] + [ATOMS[name] for name in PROPOSITIONS])
        )
    sub = lambda: classic_formulas(max_depth=max_depth - 1)
    n = draw(subscripts(2))
    choice = draw(st.integers(min_value=0, max_value=7))
    if choice == 0:
        return draw(st.sampled_from([TOP, BOTTOM] + [ATOMS[p] for p in PROPOSITIONS]))
    if choice == 1:
        return Not(draw(sub()))
    if choice == 2:
        return And(draw(sub()), draw(sub()))
    if choice == 3:
        return Or(draw(sub()), draw(sub()))
    if choice == 4:
        return Always(n, draw(sub()))
    if choice == 5:
        return Eventually(n, draw(sub()))
    if choice == 6:
        return Until(n, draw(sub()), draw(sub()))
    return Release(n, draw(sub()), draw(sub()))


@st.composite
def lassos(draw, max_prefix: int = 3, max_loop: int = 3):
    from repro.quickltl.classic import Lasso

    prefix = tuple(draw(traces(min_size=0, max_size=max_prefix)))
    loop = tuple(draw(traces(min_size=1, max_size=max_loop)))
    return Lasso(prefix, loop)
