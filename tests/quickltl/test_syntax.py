"""Formula constructors, operator overloads and structural equality."""

import pytest

from repro.quickltl import (
    Always,
    And,
    Atom,
    BOTTOM,
    Bottom,
    Defer,
    Eventually,
    Not,
    Or,
    Release,
    TOP,
    Top,
    Until,
    atom,
    conj,
    disj,
    iff,
    implies,
)


class TestAtoms:
    def test_default_atom_reads_dict(self):
        p = atom("p")
        assert p.evaluate({"p": True})
        assert not p.evaluate({"p": False})

    def test_default_atom_missing_key_is_false(self):
        assert not atom("p").evaluate({})

    def test_default_atom_reads_attribute(self):
        class State:
            ready = True

        assert atom("ready").evaluate(State())

    def test_custom_predicate(self):
        q = atom("big", lambda s: s["n"] > 10)
        assert q.evaluate({"n": 11})
        assert not q.evaluate({"n": 3})

    def test_predicate_result_coerced_to_bool(self):
        q = atom("n", lambda s: s["n"])  # returns an int
        assert q.evaluate({"n": 5}) is True
        assert q.evaluate({"n": 0}) is False

    def test_atom_equality_requires_same_predicate(self):
        pred = lambda s: True
        assert Atom("p", pred) == Atom("p", pred)
        assert Atom("p", pred) != Atom("p", lambda s: True)


class TestConstructors:
    def test_operator_overloads(self):
        p, q = atom("p"), atom("q")
        assert (p & q) == And(p, q)
        assert (p | q) == Or(p, q)
        assert ~p == Not(p)
        assert (p >> q) == Or(Not(p), q)

    def test_implies_desugars(self):
        p, q = atom("p"), atom("q")
        assert implies(p, q) == Or(Not(p), q)

    def test_iff_desugars(self):
        p, q = atom("p"), atom("q")
        assert iff(p, q) == And(implies(p, q), implies(q, p))

    def test_conj_fold(self):
        p, q, r = atom("p"), atom("q"), atom("r")
        assert conj() == TOP
        assert conj(p) == p
        assert conj(p, q, r) == And(p, And(q, r))

    def test_disj_fold(self):
        p, q = atom("p"), atom("q")
        assert disj() == BOTTOM
        assert disj(p, q) == Or(p, q)

    def test_negative_subscripts_rejected(self):
        p = atom("p")
        with pytest.raises(ValueError):
            Always(-1, p)
        with pytest.raises(ValueError):
            Eventually(-2, p)
        with pytest.raises(ValueError):
            Until(-1, p, p)
        with pytest.raises(ValueError):
            Release(-1, p, p)

    def test_constants_are_singleton_like(self):
        assert Top() == TOP
        assert Bottom() == BOTTOM
        assert TOP != BOTTOM


class TestStructuralEquality:
    def test_equal_trees_compare_equal(self):
        p = atom("p")
        assert Always(3, Eventually(1, p)) == Always(3, Eventually(1, p))

    def test_different_subscripts_differ(self):
        p = atom("p")
        assert Always(3, p) != Always(4, p)

    def test_hashable(self):
        p = atom("p")
        formulas = {Always(1, p), Eventually(1, p), Always(1, p)}
        assert len(formulas) == 2


class TestDefer:
    def test_force_builds_formula(self):
        d = Defer("sel", lambda state: TOP if state["x"] else BOTTOM)
        assert d.force({"x": True}) == TOP
        assert d.force({"x": False}) == BOTTOM

    def test_force_rejects_non_formula(self):
        d = Defer("bad", lambda state: 42)
        with pytest.raises(TypeError, match="bad"):
            d.force({})

    def test_equality_is_closure_identity(self):
        build = lambda s: TOP
        assert Defer("a", build) == Defer("a", build)
        assert Defer("a", build) != Defer("a", lambda s: TOP)
