"""Differential oracles: agreement on honest runs, detection of tampering."""

import dataclasses

from repro.api import CheckSession, SessionConfig
from repro.checker import RunnerConfig
from repro.fuzz.machine import generate_machine, machine_app
from repro.fuzz.oracles import (
    RecordingReporter,
    compare_campaigns,
    direct_oracle_mismatch,
    expected_outcome,
)
from repro.fuzz.specgen import model_spec_source, random_spec_source
from repro.quickltl import Verdict
from repro.specstrom.module import load_module


def run_machine(seed, spec_seed=None, **config_overrides):
    machine = generate_machine(seed)
    source = (
        model_spec_source(machine)
        if spec_seed is None
        else random_spec_source(machine, spec_seed)
    )
    check = load_module(source, default_subscript=8).checks[0]
    config = dict(tests=3, scheduled_actions=8, demand_allowance=6,
                  seed=f"oracle/{seed}", shrink=False)
    config.update(config_overrides)
    result = CheckSession(machine_app(machine)).check(
        check, config=RunnerConfig(**config)
    )
    return check, result


class TestDirectOracle:
    def test_model_spec_runs_agree_with_direct_semantics(self):
        for seed in range(6):
            check, campaign = run_machine(seed)
            for result in campaign.results:
                assert direct_oracle_mismatch(check, result) is None

    def test_random_spec_runs_agree_with_direct_semantics(self):
        for seed in range(8):
            check, campaign = run_machine(seed, spec_seed=seed * 13 + 5)
            for result in campaign.results:
                assert direct_oracle_mismatch(check, result) is None

    def test_tampered_verdict_is_flagged(self):
        check, campaign = run_machine(0)
        honest = campaign.results[0]
        flipped = (
            Verdict.DEFINITELY_FALSE
            if not honest.verdict.is_negative
            else Verdict.DEFINITELY_TRUE
        )
        tampered = dataclasses.replace(honest, verdict=flipped, forced=False)
        mismatch = direct_oracle_mismatch(check, tampered)
        assert mismatch is not None
        assert "direct" in mismatch

    def test_expected_outcome_reports_forced_runs(self):
        """The model spec's `always` demands states forever, so a clean
        run ends forced -- the oracle must reproduce that, not just the
        verdict."""
        check, campaign = run_machine(1)
        clean = [r for r in campaign.results if r.passed]
        assert clean
        for result in clean:
            verdict, forced = expected_outcome(
                check, [entry.state for entry in result.trace]
            )
            assert verdict is result.verdict
            assert forced == result.forced
            assert forced  # always-shaped specs never conclude on their own

    def test_empty_trace_is_rejected(self):
        check, campaign = run_machine(0)
        tampered = dataclasses.replace(campaign.results[0], trace=[])
        assert direct_oracle_mismatch(check, tampered) == (
            "test recorded an empty trace"
        )


class TestPathComparison:
    def _batches(self, jobs, reuse):
        machine = generate_machine(3)
        check = load_module(model_spec_source(machine),
                            default_subscript=8).checks[0]
        config = RunnerConfig(tests=3, scheduled_actions=8,
                              demand_allowance=6, seed="paths", shrink=False)
        recorder = RecordingReporter()
        batch = CheckSession(reporters=[recorder]).check_many(
            [("m", machine_app(machine))], spec=check, config=config,
            session=SessionConfig(jobs=jobs, reuse_executors=reuse),
        )
        return batch, recorder

    def test_serial_pooled_warm_agree(self):
        serial, serial_rec = self._batches(jobs=1, reuse=False)
        pooled, pooled_rec = self._batches(jobs=2, reuse=False)
        warm, warm_rec = self._batches(jobs=2, reuse=True)
        for candidate in (pooled, warm):
            assert compare_campaigns(
                "x", serial[0].result, candidate[0].result
            ) is None
        assert serial_rec.events == pooled_rec.events == warm_rec.events

    def test_tampered_campaign_is_flagged(self):
        serial, _ = self._batches(jobs=1, reuse=False)
        baseline = serial[0].result
        tampered = dataclasses.replace(
            baseline,
            results=[
                dataclasses.replace(baseline.results[0], actions_taken=999)
            ] + baseline.results[1:],
        )
        difference = compare_campaigns("t", baseline, tampered)
        assert difference is not None
        assert "per-test results disagree" in difference
