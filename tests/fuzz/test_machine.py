"""Generated machines: determinism, serialisation, app behaviour, faults."""

from repro.browser.webdriver import Browser
from repro.fuzz.machine import (
    STORAGE_KEY,
    ButtonSpec,
    MachineFault,
    MachineSpec,
    TimerSpec,
    fault_candidates,
    generate_machine,
    machine_app,
)

#: A hand-built machine so behaviour tests control every edge.
MACHINE = MachineSpec(
    seed=99,
    states=("s0", "s1", "s2"),
    initial="s0",
    buttons=(
        ButtonSpec("a", (("s0", "s1"), ("s1", "s2"), ("s2", "s0"))),
        ButtonSpec("b", (("s0", "s0"), ("s1", "s0"), ("s2", "s2"))),
    ),
    timer=TimerSpec(500.0, (("s0", "s1"), ("s1", "s2"), ("s2", "s2"))),
    persist=True,
)


def mount(machine=MACHINE, fault=None):
    browser = Browser(machine_app(machine, fault))
    browser.load()
    return browser


def state_text(browser):
    return browser.document.query_one("#state").text


def ticks_text(browser):
    return browser.document.query_one("#ticks").text


def click(browser, name):
    browser.click(browser.document.query_one(f"#btn-{name}"))


class TestGeneration:
    def test_same_seed_same_machine(self):
        assert generate_machine(42) == generate_machine(42)

    def test_seeds_explore_the_space(self):
        machines = [generate_machine(seed) for seed in range(40)]
        assert len({m.states for m in machines}) > 1
        assert any(m.timer is not None for m in machines)
        assert any(m.timer is None for m in machines)
        assert any(m.persist for m in machines)
        assert any(not m.persist for m in machines)

    def test_transitions_are_total(self):
        for seed in range(20):
            machine = generate_machine(seed)
            for button in machine.buttons:
                for state in machine.states:
                    assert button.successor(state) in machine.states
            if machine.timer is not None:
                for state in machine.states:
                    assert machine.timer.successor(state) in machine.states

    def test_round_trip_serialisation(self):
        for seed in range(10):
            machine = generate_machine(seed)
            assert MachineSpec.from_dict(machine.to_dict()) == machine
        fault = MachineFault("drop_transition", button="a", state="s1")
        assert MachineFault.from_dict(fault.to_dict()) == fault


class TestFaultCandidates:
    def test_no_vacuous_mutants(self):
        """Every candidate deviates on at least one reachable edge."""
        for seed in range(20):
            machine = generate_machine(seed)
            for fault in fault_candidates(machine):
                if fault.kind == "drop_transition":
                    button = machine.button_named(fault.button)
                    assert button.successor(fault.state) != fault.state
                elif fault.kind == "swallowed_event":
                    button = machine.button_named(fault.button)
                    assert any(s != t for s, t in button.transitions)
                elif fault.kind == "off_by_one_timer":
                    assert machine.timer is not None
                    assert any(
                        s != t for s, t in machine.timer.transitions
                    )
                elif fault.kind == "broken_persistence":
                    assert machine.persist

    def test_timerless_machine_offers_no_timer_fault(self):
        machine = MachineSpec(
            seed=1, states=("s0", "s1"), initial="s0",
            buttons=(ButtonSpec("a", (("s0", "s1"), ("s1", "s0"))),),
        )
        kinds = {fault.kind for fault in fault_candidates(machine)}
        assert "off_by_one_timer" not in kinds
        assert "broken_persistence" not in kinds


class TestCorrectApp:
    def test_initial_render(self):
        browser = mount()
        assert state_text(browser) == "s0"
        assert ticks_text(browser) == "0"

    def test_clicks_follow_the_transition_table(self):
        browser = mount()
        click(browser, "a")
        assert state_text(browser) == "s1"
        click(browser, "a")
        assert state_text(browser) == "s2"
        click(browser, "b")  # self-loop on s2
        assert state_text(browser) == "s2"
        click(browser, "a")
        assert state_text(browser) == "s0"

    def test_timer_steps_and_counts(self):
        browser = mount()
        browser.advance(500)
        assert ticks_text(browser) == "1"
        assert state_text(browser) == "s1"
        browser.advance(1000)
        assert ticks_text(browser) == "3"
        assert state_text(browser) == "s2"  # s1 -> s2 -> s2

    def test_persistence_survives_reload(self):
        browser = mount()
        click(browser, "a")
        browser.reload()
        assert state_text(browser) == "s1"
        assert ticks_text(browser) == "0"  # the counter is per-session

    def test_non_persisting_machine_forgets_on_reload(self):
        machine = MachineSpec(
            seed=2, states=("s0", "s1"), initial="s0",
            buttons=(ButtonSpec("a", (("s0", "s1"), ("s1", "s0"))),),
            persist=False,
        )
        browser = mount(machine)
        click(browser, "a")
        assert state_text(browser) == "s1"
        browser.reload()
        assert state_text(browser) == "s0"


class TestFaultyTwins:
    def test_drop_transition_freezes_one_edge_only(self):
        fault = MachineFault("drop_transition", button="a", state="s1")
        browser = mount(fault=fault)
        click(browser, "a")  # s0 edge is healthy
        assert state_text(browser) == "s1"
        click(browser, "a")  # the dropped edge
        assert state_text(browser) == "s1"
        click(browser, "b")  # other buttons unaffected: s1 -> s0
        assert state_text(browser) == "s0"

    def test_swallowed_event_never_reacts(self):
        fault = MachineFault("swallowed_event", button="a")
        browser = mount(fault=fault)
        click(browser, "a")
        click(browser, "a")
        assert state_text(browser) == "s0"
        click(browser, "b")  # other listeners still attached (self-loop)
        assert state_text(browser) == "s0"

    def test_stale_render_hides_one_state(self):
        fault = MachineFault("stale_render", state="s1")
        browser = mount(fault=fault)
        click(browser, "a")  # really in s1, but the label still shows s0
        assert state_text(browser) == "s0"
        click(browser, "a")  # the *machine* was in s1: s1 -> s2 renders
        assert state_text(browser) == "s2"

    def test_off_by_one_timer_double_steps(self):
        fault = MachineFault("off_by_one_timer")
        browser = mount(fault=fault)
        browser.advance(500)
        assert ticks_text(browser) == "1"  # the counter is honest
        assert state_text(browser) == "s2"  # s0 -> s1 -> s2 in one tick

    def test_broken_persistence_forgets_on_reload(self):
        fault = MachineFault("broken_persistence")
        browser = mount(fault=fault)
        click(browser, "a")
        assert state_text(browser) == "s1"
        browser.reload()
        assert state_text(browser) == "s0"
        assert browser.storage.get_item(STORAGE_KEY) is None
