"""Generated specifications: front-end round trips, soundness, detection."""

from repro.api import CheckSession
from repro.checker import RunnerConfig
from repro.fuzz.machine import (
    ButtonSpec,
    MachineFault,
    MachineSpec,
    TimerSpec,
    generate_machine,
    machine_app,
)
from repro.fuzz.specgen import model_spec_source, random_spec_source
from repro.specstrom.module import load_module


def small_config(**overrides):
    defaults = dict(tests=3, scheduled_actions=8, demand_allowance=6,
                    seed="spec-test", shrink=True)
    defaults.update(overrides)
    return RunnerConfig(**defaults)


class TestFrontEndRoundTrip:
    def test_model_sources_elaborate_for_many_seeds(self):
        for seed in range(30):
            machine = generate_machine(seed)
            module = load_module(model_spec_source(machine),
                                 default_subscript=8)
            check = module.checks[0]
            assert check.name == "model"
            # The dependency set covers every observable the app renders.
            assert "#state" in check.dependencies
            assert "#ticks" in check.dependencies
            for button in machine.buttons:
                assert button.selector in check.dependencies
            assert len(check.actions) >= len(machine.buttons)

    def test_random_sources_elaborate_for_many_seeds(self):
        for seed in range(30):
            machine = generate_machine(seed)
            module = load_module(random_spec_source(machine, seed * 7 + 1),
                                 default_subscript=8)
            assert module.checks[0].name == "fuzzed"

    def test_sources_are_deterministic(self):
        machine = generate_machine(5)
        assert model_spec_source(machine) == model_spec_source(machine)
        assert random_spec_source(machine, 3) == random_spec_source(machine, 3)
        assert random_spec_source(machine, 3) != random_spec_source(machine, 4)


class TestModelSpecSoundness:
    def test_correct_twins_pass(self):
        """The derived transition-system spec never flags the app it was
        derived from -- the precondition for the whole scoreboard."""
        for seed in range(8):
            machine = generate_machine(seed)
            module = load_module(model_spec_source(machine),
                                 default_subscript=8)
            result = CheckSession(machine_app(machine)).check(
                module.checks[0], config=small_config(seed=f"sound/{seed}")
            )
            assert result.passed, (
                f"machine {seed}: {result.counterexample.describe()}"
            )


#: An explicit known-fault scenario for the acceptance criterion: the
#: 'a' edge out of s1 is dropped, so any test driving a twice sees it.
KNOWN_MACHINE = MachineSpec(
    seed=7,
    states=("s0", "s1", "s2"),
    initial="s0",
    buttons=(ButtonSpec("a", (("s0", "s1"), ("s1", "s2"), ("s2", "s0"))),),
    timer=TimerSpec(700.0, (("s0", "s0"), ("s1", "s1"), ("s2", "s2"))),
    persist=False,
)
KNOWN_FAULT = MachineFault("drop_transition", button="a", state="s1")


class TestKnownFaultDetection:
    def test_seeded_fault_yields_minimized_replayable_counterexample(self):
        module = load_module(model_spec_source(KNOWN_MACHINE),
                             default_subscript=8)
        check = module.checks[0]
        config = small_config(tests=4, seed="known-fault")
        session = CheckSession(machine_app(KNOWN_MACHINE, KNOWN_FAULT))
        result = session.check(check, config=config)
        assert not result.passed
        shrunk = result.shrunk_counterexample
        assert shrunk is not None
        # Minimal: reaching the dropped edge needs one 'a' to get to s1
        # and one to expose the frozen transition.
        assert len(shrunk.actions) == 2
        assert [name for name, _ in shrunk.actions] == ["a!", "a!"]
        # Replayable: the minimized sequence reproduces the verdict on a
        # fresh runner (what a corpus replay does).
        runner = session.runner(check, config=config)
        replayed = runner.replay(list(shrunk.actions))
        assert replayed is not None
        assert replayed.failed
        assert replayed.verdict is shrunk.verdict

    def test_correct_twin_of_the_known_machine_passes(self):
        module = load_module(model_spec_source(KNOWN_MACHINE),
                             default_subscript=8)
        result = CheckSession(machine_app(KNOWN_MACHINE)).check(
            module.checks[0], config=small_config(seed="known-fault")
        )
        assert result.passed
