"""The fuzz driver: determinism, scoreboard, corpus, divergence handling."""

import json

import pytest

from repro.fuzz import campaigns as campaigns_module
from repro.fuzz.campaigns import (
    generate_campaign,
    run_campaign,
    run_fuzz,
)
from repro.fuzz.corpus import append_entry, read_corpus, replay_entry
from repro.specstrom.module import load_module

JOBS = 2
SEED = 11


class TestGeneration:
    def test_campaigns_are_deterministic(self):
        assert generate_campaign(3, 5) == generate_campaign(3, 5)
        assert generate_campaign(3, 5) != generate_campaign(3, 6)

    def test_every_generated_spec_elaborates(self):
        for index in range(15):
            campaign = generate_campaign(SEED, index)
            module = load_module(campaign.spec_source,
                                 default_subscript=campaign.default_subscript)
            assert len(module.checks) == 1
            assert campaign.spec_kind in ("model", "random")

    def test_model_campaigns_bring_faulty_twins(self):
        drawn = [generate_campaign(SEED, index) for index in range(15)]
        model = [c for c in drawn if c.spec_kind == "model"]
        assert model
        assert any(c.faults for c in model)
        targets = model[0].targets()
        assert targets[0] == ("correct", None)


class TestRunCampaign:
    def test_campaigns_run_clean_and_fill_the_scoreboard(self):
        detections = []
        for index in range(4):
            campaign = generate_campaign(SEED, index)
            outcome = run_campaign(campaign, jobs=JOBS)
            assert outcome.divergences == []
            assert outcome.tests_run > 0
            detections.extend(outcome.detections)
        assert detections  # at least one faulty twin was injected

    def test_run_fuzz_is_deterministic(self):
        first = run_fuzz(seed=SEED, campaigns=3, jobs=JOBS)
        second = run_fuzz(seed=SEED, campaigns=3, jobs=JOBS)
        assert json.dumps(first.to_dict(), sort_keys=True) == json.dumps(
            second.to_dict(), sort_keys=True
        )
        assert first.ok
        assert first.tests_run > 0


class TestCorpus:
    def test_counterexamples_are_persisted_and_replay(self, tmp_path):
        corpus = tmp_path / "corpus.jsonl"
        report = run_fuzz(seed=7, campaigns=8, jobs=JOBS,
                          corpus_path=str(corpus))
        assert report.ok
        assert report.counterexamples >= 1
        entries = list(read_corpus(str(corpus)))
        assert len(entries) == report.counterexamples
        for entry in entries:
            assert entry.kind == "counterexample"
            assert entry.actions
            # Replay must reproduce the recorded verdict exactly.
            assert replay_entry(entry) is None

    def test_append_creates_parent_directories(self, tmp_path):
        campaign = generate_campaign(SEED, 0)
        entry = campaigns_module._divergence_entry(
            campaign, None, "path", "synthetic", jobs=JOBS
        )
        path = tmp_path / "deep" / "nested" / "corpus.jsonl"
        append_entry(str(path), entry)
        restored = list(read_corpus(str(path)))
        assert len(restored) == 1
        assert restored[0].machine == campaign.machine
        assert restored[0].spec_source == campaign.spec_source


class TestDivergenceHandling:
    @pytest.fixture
    def broken_oracle(self, monkeypatch):
        """Make the trace oracle reject everything: a synthetic checker
        bug, exercising detection, shrinking, persistence and replay."""
        monkeypatch.setattr(
            campaigns_module,
            "direct_oracle_mismatch",
            lambda check, result: "synthetic disagreement",
        )

    def test_divergence_is_detected_shrunk_and_persisted(
        self, broken_oracle, tmp_path
    ):
        campaign = generate_campaign(SEED, 0)
        outcome = run_campaign(campaign, jobs=JOBS)
        assert outcome.divergences
        divergence = outcome.divergences[0]
        assert divergence.kind == "oracle"
        # Shrinking drove the reproduction down to the smallest
        # configuration that still diverges (everything, here).
        assert divergence.entry.config["tests"] == 1
        assert divergence.entry.config["scheduled_actions"] == 1
        # The entry records the original batch shape and pool width, so
        # replay re-runs the campaign that diverged, not a one-target
        # approximation of it.
        assert divergence.entry.extra["jobs"] == JOBS
        assert divergence.entry.extra["twins"] == [
            fault.to_dict() for fault in campaign.faults
        ]
        # While the bug "exists", the corpus entry reproduces.
        assert replay_entry(divergence.entry) is None

    def test_fixed_divergence_no_longer_reproduces(self, tmp_path):
        entry_holder = {}

        def capture(monkeypatch_entry):
            entry_holder["entry"] = monkeypatch_entry

        campaign = generate_campaign(SEED, 0)
        # Record a divergence under a temporarily-broken oracle...
        original = campaigns_module.direct_oracle_mismatch
        campaigns_module.direct_oracle_mismatch = (
            lambda check, result: "synthetic disagreement"
        )
        try:
            outcome = run_campaign(campaign, jobs=JOBS,
                                   shrink_divergences=False)
            capture(outcome.divergences[0].entry)
        finally:
            campaigns_module.direct_oracle_mismatch = original
        # ...then replay it against the healthy checker: fixed.
        message = replay_entry(entry_holder["entry"])
        assert message == "the recorded divergence no longer reproduces"

    def test_report_flags_divergences(self, broken_oracle):
        report = run_fuzz(seed=SEED, campaigns=1, jobs=JOBS)
        assert not report.ok
        assert "DIVERGENCE" in report.summary()
        assert report.to_dict()["divergences"]
