"""The ``repro fuzz`` command: run, report formats, corpus, replay."""

import json

from repro.cli import main


class TestFuzzCommand:
    def test_clean_run_exits_zero_with_scoreboard(self, capsys):
        code = main(["fuzz", "--seed", "11", "--campaigns", "4",
                     "--jobs", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "4 campaign(s)" in out
        assert "fault-detection scoreboard" in out

    def test_json_format(self, capsys):
        code = main(["fuzz", "--seed", "11", "--campaigns", "2",
                     "--jobs", "2", "--format", "json"])
        out = capsys.readouterr().out
        assert code == 0
        record = json.loads(out)
        assert record["campaigns"] == 2
        assert record["divergences"] == []
        assert "scoreboard" in record

    def test_corpus_and_replay_round_trip(self, capsys, tmp_path):
        corpus = tmp_path / "corpus.jsonl"
        code = main(["fuzz", "--seed", "7", "--campaigns", "8",
                     "--jobs", "2", "--corpus", str(corpus)])
        assert code == 0
        assert corpus.exists()
        capsys.readouterr()
        code = main(["fuzz", "--replay", str(corpus)])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 problem(s)" in out
        assert "reproduces" in out

    def test_replay_honours_json_format(self, capsys, tmp_path):
        corpus = tmp_path / "corpus.jsonl"
        main(["fuzz", "--seed", "7", "--campaigns", "8", "--jobs", "2",
              "--corpus", str(corpus)])
        capsys.readouterr()
        code = main(["fuzz", "--replay", str(corpus), "--format", "json"])
        out = capsys.readouterr().out
        assert code == 0
        records = [json.loads(line) for line in out.splitlines()]
        assert records[-1]["event"] == "replay_end"
        assert records[-1]["problems"] == 0
        assert all(r["ok"] for r in records[:-1])

    def test_same_seed_reproduces_the_same_report(self, capsys):
        main(["fuzz", "--seed", "5", "--campaigns", "3", "--jobs", "2",
              "--format", "json"])
        first = capsys.readouterr().out
        main(["fuzz", "--seed", "5", "--campaigns", "3", "--jobs", "2",
              "--format", "json"])
        second = capsys.readouterr().out
        assert json.loads(first) == json.loads(second)
