"""Shared hypothesis strategies and settings for the whole test suite.

This is the one home for generation machinery that more than one test
package needs (promoted from ``tests/quickltl/strategies.py``, which
remains as a thin re-export for old imports):

* **Settings**: :func:`examples` replaces the per-file
  ``@settings(max_examples=N, deadline=None)`` boilerplate.  The suite
  always disables hypothesis deadlines (simulated-time tests have
  unhelpfully noisy wall-clock behaviour under load), so the only knob a
  test should state is how many examples it wants.
* **QuickLTL**: propositional states/traces over a small fixed alphabet
  and random formulas (:func:`formulas`, :func:`classic_formulas`,
  :func:`lassos`) for oracle comparisons against the reference
  semantics.
* **Specstrom**: generators over the runtime value universe
  (:func:`spec_values`), selectors, element/state snapshots and
  primitive actions (:func:`primitive_actions`,
  :func:`resolved_actions`) -- the vocabulary of the evaluator,
  actions and executor layers.

Deterministic (``random.Random``-seeded) generation for the fuzz
subsystem lives in :mod:`repro.fuzz`; these strategies are for
hypothesis-driven unit properties.
"""

from __future__ import annotations

from hypothesis import settings as _settings
from hypothesis import strategies as st

from repro.quickltl import (
    Always,
    And,
    BOTTOM,
    Eventually,
    Not,
    NextReq,
    NextStrong,
    NextWeak,
    Or,
    Release,
    TOP,
    Until,
    atom,
)
from repro.specstrom.actions import (
    EVENT_PRIMITIVES,
    PrimitiveAction,
    PrimitiveEvent,
    ResolvedAction,
    USER_PRIMITIVES,
)
from repro.specstrom.state import ElementSnapshot, StateSnapshot
from repro.specstrom.values import SelectorValue


def examples(max_examples: int):
    """The suite's standard hypothesis profile, sized per test.

    ``@examples(200)`` == ``@settings(max_examples=200, deadline=None)``.
    """
    return _settings(max_examples=max_examples, deadline=None)


# ----------------------------------------------------------------------
# QuickLTL: propositional states and random formulas
# ----------------------------------------------------------------------

PROPOSITIONS = ("p", "q", "r")

#: Atoms are shared across a whole test run so that structural equality
#: (and therefore simplifier deduplication) can actually fire.
ATOMS = {name: atom(name) for name in PROPOSITIONS}


def states(props=PROPOSITIONS):
    """One propositional state: a dict over the fixed alphabet."""
    return st.fixed_dictionaries({name: st.booleans() for name in props})


def traces(min_size: int = 1, max_size: int = 8, props=PROPOSITIONS):
    """A finite trace of propositional states."""
    return st.lists(states(props), min_size=min_size, max_size=max_size)


def subscripts(max_n: int = 3):
    """A temporal-operator subscript, kept small so oracles stay fast."""
    return st.integers(min_value=0, max_value=max_n)


@st.composite
def formulas(draw, max_depth: int = 4, max_subscript: int = 3):
    """A random QuickLTL formula of bounded depth."""
    if max_depth <= 0:
        return draw(
            st.sampled_from([TOP, BOTTOM] + [ATOMS[name] for name in PROPOSITIONS])
        )
    sub = lambda: formulas(max_depth=max_depth - 1, max_subscript=max_subscript)
    n = draw(subscripts(max_subscript))
    choice = draw(st.integers(min_value=0, max_value=10))
    if choice == 0:
        return draw(st.sampled_from([TOP, BOTTOM] + [ATOMS[p] for p in PROPOSITIONS]))
    if choice == 1:
        return Not(draw(sub()))
    if choice == 2:
        return And(draw(sub()), draw(sub()))
    if choice == 3:
        return Or(draw(sub()), draw(sub()))
    if choice == 4:
        return NextReq(draw(sub()))
    if choice == 5:
        return NextWeak(draw(sub()))
    if choice == 6:
        return NextStrong(draw(sub()))
    if choice == 7:
        return Always(n, draw(sub()))
    if choice == 8:
        return Eventually(n, draw(sub()))
    if choice == 9:
        return Until(n, draw(sub()), draw(sub()))
    return Release(n, draw(sub()), draw(sub()))


@st.composite
def classic_formulas(draw, max_depth: int = 3):
    """Formulas without explicit next operators, for classic-LTL tests
    (all nexts coincide on infinite traces, so this loses no coverage for
    identity checking while keeping lassos cheap)."""
    if max_depth <= 0:
        return draw(
            st.sampled_from([TOP, BOTTOM] + [ATOMS[name] for name in PROPOSITIONS])
        )
    sub = lambda: classic_formulas(max_depth=max_depth - 1)
    n = draw(subscripts(2))
    choice = draw(st.integers(min_value=0, max_value=7))
    if choice == 0:
        return draw(st.sampled_from([TOP, BOTTOM] + [ATOMS[p] for p in PROPOSITIONS]))
    if choice == 1:
        return Not(draw(sub()))
    if choice == 2:
        return And(draw(sub()), draw(sub()))
    if choice == 3:
        return Or(draw(sub()), draw(sub()))
    if choice == 4:
        return Always(n, draw(sub()))
    if choice == 5:
        return Eventually(n, draw(sub()))
    if choice == 6:
        return Until(n, draw(sub()), draw(sub()))
    return Release(n, draw(sub()), draw(sub()))


@st.composite
def lassos(draw, max_prefix: int = 3, max_loop: int = 3):
    """An ultimately-periodic infinite trace (classic-LTL oracle input)."""
    from repro.quickltl.classic import Lasso

    prefix = tuple(draw(traces(min_size=0, max_size=max_prefix)))
    loop = tuple(draw(traces(min_size=1, max_size=max_loop)))
    return Lasso(prefix, loop)


# ----------------------------------------------------------------------
# Specstrom: values, selectors, snapshots, actions
# ----------------------------------------------------------------------

#: A few CSS-ish selectors, enough shape diversity for selector-keyed
#: code paths (ids, classes, descendants, attributes).
SELECTORS = (
    "#state",
    "#toggle",
    ".todo-list li",
    ".todo-list li.completed",
    "button.primary",
    "input[type=text]",
)


def selectors():
    """A selector string (see :data:`SELECTORS`)."""
    return st.sampled_from(SELECTORS)


def selector_values():
    """A Specstrom backtick-selector value."""
    return selectors().map(SelectorValue)


def scalar_values():
    """Ground scalars of the Specstrom value universe."""
    return st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-100, max_value=100),
        st.floats(allow_nan=False, allow_infinity=False,
                  min_value=-100.0, max_value=100.0),
        st.text(alphabet="abc xyz", max_size=6),
    )


def spec_values(max_depth: int = 2):
    """Plain data of the Specstrom universe: scalars plus (nested)
    lists and string-keyed objects -- everything ``is_plain_data``
    accepts short of snapshots."""
    return st.recursive(
        scalar_values(),
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.dictionaries(st.text(alphabet="abcde", min_size=1, max_size=4),
                            children, max_size=4),
        ),
        max_leaves=8,
    )


def element_snapshots():
    """An immutable element snapshot with plausible widget state."""
    return st.builds(
        ElementSnapshot,
        tag=st.sampled_from(("div", "span", "button", "input", "li")),
        text=st.text(alphabet="ab 01", max_size=6),
        value=st.text(alphabet="ab 01", max_size=6),
        checked=st.booleans(),
        enabled=st.booleans(),
        visible=st.booleans(),
        focused=st.booleans(),
        classes=st.lists(
            st.sampled_from(("completed", "editing", "selected")),
            max_size=2, unique=True,
        ).map(tuple),
    )


@st.composite
def state_snapshots(draw, selector_pool=SELECTORS, max_matches: int = 3):
    """A state snapshot over a subset of the selector pool."""
    chosen = draw(
        st.lists(st.sampled_from(selector_pool), min_size=1, max_size=3,
                 unique=True)
    )
    queries = {
        css: tuple(
            draw(st.lists(element_snapshots(), max_size=max_matches))
        )
        for css in chosen
    }
    return StateSnapshot(
        queries=queries,
        happened=tuple(draw(st.lists(
            st.sampled_from(("loaded?", "tick?", "click!")), max_size=2))),
        version=draw(st.integers(min_value=0, max_value=50)),
        timestamp_ms=float(draw(st.integers(min_value=0, max_value=10_000))),
    )


@st.composite
def primitive_actions(draw):
    """A well-formed user primitive (selector/args arity respected)."""
    kind = draw(st.sampled_from(sorted(USER_PRIMITIVES)))
    needs_selector, extra = USER_PRIMITIVES[kind]
    selector = draw(selectors()) if needs_selector else None
    args = tuple(
        draw(st.text(alphabet="abc", min_size=1, max_size=4))
        for _ in extra
    )
    return PrimitiveAction(kind, selector, args)


@st.composite
def primitive_events(draw):
    """A well-formed event primitive."""
    kind = draw(st.sampled_from(sorted(EVENT_PRIMITIVES)))
    (needs_selector,) = EVENT_PRIMITIVES[kind]
    selector = draw(selectors()) if needs_selector else None
    return PrimitiveEvent(kind, selector)


@st.composite
def resolved_actions(draw, max_index: int = 3):
    """A concrete action as the executor receives it."""
    primitive = draw(primitive_actions())
    index = (
        draw(st.integers(min_value=0, max_value=max_index))
        if primitive.selector is not None
        else None
    )
    return ResolvedAction(
        primitive.kind, primitive.selector, index, primitive.args
    )
